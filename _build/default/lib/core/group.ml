type t = {
  branch : P4ir.Program.node_id;
  members : Pipelet.t list;
  common_exit : P4ir.Program.next;
}

type evaluated = {
  group : t;
  cache : P4ir.Table.t;
  gain : float;
  mem_delta : int;
  update_delta : float;
}

let single_pred prog (p : Pipelet.t) branch =
  match P4ir.Program.predecessors prog p.entry with
  | [ pred ] -> pred = branch
  | _ -> false

let detect prog ~candidates =
  let find_member entry =
    List.find_opt (fun (p : Pipelet.t) -> p.entry = entry && not p.is_switch_case) candidates
  in
  List.filter_map
    (fun (id, (c : P4ir.Program.cond)) ->
      match (c.on_true, c.on_false) with
      | Some t_entry, Some f_entry -> (
        match (find_member t_entry, find_member f_entry) with
        | Some pt, Some pf
          when pt.exit = pf.exit && single_pred prog pt id && single_pred prog pf id
               && pt.entry <> pf.entry ->
          Some { branch = id; members = [ pt; pf ]; common_exit = pt.exit }
        | _ -> None)
      | _ -> None)
    (P4ir.Program.conds prog)

let member_outcomes (c : P4ir.Program.cond) (g : t) =
  List.map
    (fun (p : Pipelet.t) ->
      let outcome = if c.on_true = Some p.entry then "true" else "false" in
      (outcome, p))
    g.members

let cond_of prog id =
  match P4ir.Program.find_exn prog id with
  | P4ir.Program.Cond c -> c
  | _ -> invalid_arg "Group: branch node is not a conditional"

let build_cache ?(capacity = 4096) ?(insert_limit = 1000.) ~name prog g =
  let c = cond_of prog g.branch in
  let member_tabs = List.map (fun p -> Pipelet.tables prog p) g.members in
  if not (List.for_all Cache.cacheable member_tabs) then None
  else begin
    let total_actions =
      List.fold_left (fun acc tabs -> acc + Cache.num_sequences tabs) 0 member_tabs
    in
    if total_actions > Cache.max_fused_actions then None
    else begin
      let key_fields =
        c.field
        :: List.concat_map (fun tabs -> Cache.live_in_fields tabs) member_tabs
        |> List.sort_uniq P4ir.Field.compare
      in
      let keys =
        List.map (fun f -> P4ir.Table.key f P4ir.Match_kind.Exact) key_fields
      in
      let actions =
        List.concat_map
          (fun (outcome, p) ->
            Cache.fused_actions_of
              ~name_pairs_prefix:[ (c.cond_name, outcome) ]
              (Pipelet.tables prog p))
          (member_outcomes c g)
      in
      let covered =
        c.cond_name
        :: List.concat_map
             (fun tabs -> List.map (fun (t : P4ir.Table.t) -> t.name) tabs)
             member_tabs
      in
      let miss = P4ir.Action.nop "miss" in
      Some
        (P4ir.Table.make ~name ~keys
           ~actions:(actions @ [ miss ])
           ~default_action:"miss" ~max_entries:capacity
           ~role:
             (P4ir.Table.Cache
                { P4ir.Table.cached_tables = covered;
                  capacity;
                  insert_limit;
                  auto_insert = true })
           ())
    end
  end

(* Build a standalone program of the group region (branch + members),
   optionally fronted by the cache, all exiting to the sink. *)
let region_program ?cache prog g =
  let c = cond_of prog g.branch in
  let mini = P4ir.Program.empty "__group_region" in
  let mini, arm_entries =
    List.fold_left
      (fun (mini, acc) (p : Pipelet.t) ->
        let tabs = List.map (fun t -> Transform.Plain t) (Pipelet.tables prog p) in
        let mini, entry =
          List.fold_left
            (fun (mini, next) el ->
              match el with
              | Transform.Plain tab ->
                let mini, id =
                  P4ir.Program.add_node mini
                    (P4ir.Program.Table (tab, P4ir.Program.Uniform next))
                in
                (mini, Some id)
              | _ -> (mini, next))
            (mini, None) (List.rev tabs)
        in
        (mini, (p.entry, entry) :: acc))
      (mini, []) g.members
  in
  let arm p = List.assoc p arm_entries in
  let on_true =
    match c.on_true with Some e -> arm e | None -> None
  in
  let on_false =
    match c.on_false with Some e -> arm e | None -> None
  in
  let mini, branch_id =
    P4ir.Program.add_node mini (P4ir.Program.Cond { c with on_true; on_false })
  in
  match cache with
  | None -> P4ir.Program.with_root mini (Some branch_id)
  | Some (cache_tab : P4ir.Table.t) ->
    let branches =
      List.map
        (fun (a : P4ir.Action.t) ->
          if String.equal a.name cache_tab.default_action then (a.name, Some branch_id)
          else (a.name, None))
        cache_tab.actions
    in
    let mini, cache_id =
      P4ir.Program.add_node mini
        (P4ir.Program.Table (cache_tab, P4ir.Program.Per_action branches))
    in
    P4ir.Program.with_root mini (Some cache_id)

let group_cache_stats target prof prog g (cache : P4ir.Table.t) =
  ignore target;
  let c = cond_of prog g.branch in
  let member_tabs = List.concat_map (fun p -> Pipelet.tables prog p) g.members in
  let hit_rate =
    Profile.cache_hit_estimate prof
      ~table_names:(List.map (fun (t : P4ir.Table.t) -> t.name) member_tabs)
  in
  let part_prob (owner, label) =
    if String.equal owner c.cond_name then
      let p = Profile.true_prob prof ~cond_name:c.cond_name in
      if String.equal label "true" then p else 1. -. p
    else
      match
        List.find_opt (fun (t : P4ir.Table.t) -> String.equal t.name owner) member_tabs
      with
      | Some tab -> Profile.action_prob prof ~table:tab ~action:label
      | None -> 1.
  in
  let action_probs =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name cache.default_action then (a.name, 1. -. hit_rate)
        else
          let parts = Profile.Counter_map.split_fused a.name in
          ( a.name,
            hit_rate *. List.fold_left (fun acc part -> acc *. part_prob part) 1.0 parts ))
      cache.actions
  in
  let update_rate =
    match cache.role with P4ir.Table.Cache m -> m.insert_limit | _ -> 0.
  in
  { Profile.action_probs; update_rate; locality = -1. }

let evaluate target prof prog g ~cache =
  let before = region_program prog g in
  let after = region_program ~cache prog g in
  let prof_after =
    Profile.set_table cache.P4ir.Table.name (group_cache_stats target prof prog g cache) prof
  in
  let l_before = Costmodel.Cost.expected_latency target prof before in
  let l_after = Costmodel.Cost.expected_latency target prof_after after in
  let reach =
    try List.assoc g.branch (Costmodel.Cost.reach_probs prof prog) with Not_found -> 0.
  in
  { group = g;
    cache;
    gain = (l_before -. l_after) *. reach;
    mem_delta = Costmodel.Resource.table_memory target cache;
    update_delta =
      (match cache.role with P4ir.Table.Cache m -> m.insert_limit | _ -> 0.) }

let apply prog g ~cache =
  let branches =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name cache.P4ir.Table.default_action then
          (a.name, Some g.branch)
        else (a.name, g.common_exit))
      cache.P4ir.Table.actions
  in
  let prog, cache_id =
    P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches))
  in
  let prog = P4ir.Program.redirect prog ~old_target:g.branch ~new_target:(Some cache_id) in
  (* The redirect also rewrote the cache's own miss edge; point it back. *)
  let prog =
    P4ir.Program.set_node prog cache_id
      (P4ir.Program.Table (cache, P4ir.Program.Per_action branches))
  in
  P4ir.Program.validate_exn prog;
  prog
