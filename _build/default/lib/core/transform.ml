type element =
  | Plain of P4ir.Table.t
  | Cached of { cache : P4ir.Table.t; originals : P4ir.Table.t list }
  | Merged_plain of { merged : P4ir.Table.t; originals : P4ir.Table.t list }
  | Merged_fallback of { merged : P4ir.Table.t; originals : P4ir.Table.t list }

let element_tables = function
  | Plain t -> [ t ]
  | Merged_plain { merged; _ } -> [ merged ]
  | Cached { cache; originals } -> cache :: originals
  | Merged_fallback { merged; originals } -> merged :: originals

(* Add one element to [prog] such that it flows into [next]; returns the
   element's entry node id. *)
let add_element prog element ~next =
  match element with
  | Plain tab | Merged_plain { merged = tab; _ } ->
    P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform next))
  | Cached { cache; originals } | Merged_fallback { merged = cache; originals } ->
    let prog, first_original =
      List.fold_left
        (fun (prog, follow) tab ->
          let prog, id =
            P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform follow))
          in
          (prog, Some id))
        (prog, next) (List.rev originals)
    in
    (* Hit actions jump straight to [next]; the default (miss) action
       falls through to the first original table. *)
    let branches =
      List.map
        (fun (a : P4ir.Action.t) ->
          if String.equal a.name cache.P4ir.Table.default_action then (a.name, first_original)
          else (a.name, next))
        cache.P4ir.Table.actions
    in
    P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches))

let build_sequence prog elements ~exit =
  match elements with
  | [] -> invalid_arg "Transform: empty element list"
  | _ ->
    List.fold_left
      (fun (prog, next) element ->
        let prog, id = add_element prog element ~next in
        (prog, Some id))
      (prog, exit) (List.rev elements)

let chain_program name elements =
  let prog, entry = build_sequence (P4ir.Program.empty name) elements ~exit:None in
  let prog = P4ir.Program.with_root prog entry in
  P4ir.Program.validate_exn prog;
  prog

let apply prog (p : Pipelet.t) elements =
  let prog, entry = build_sequence prog elements ~exit:p.exit in
  let entry_id = match entry with Some id -> id | None -> assert false in
  let prog = P4ir.Program.redirect prog ~old_target:p.entry ~new_target:(Some entry_id) in
  let prog = List.fold_left P4ir.Program.remove_node prog p.table_ids in
  (match P4ir.Program.validate prog with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Transform.apply produced invalid program: " ^ msg));
  prog
