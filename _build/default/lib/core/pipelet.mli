(** Pipelet formation (§4.1.1).

    A pipelet is a branch-free run of match/action tables — the
    domain-specific analogue of a basic block. The program is split at
    conditional branches, at switch-case tables (which form singleton
    pipelets), and at join points; runs longer than [max_len] are split
    further so the local search stays tractable. *)

type t = {
  entry : P4ir.Program.node_id;
  table_ids : P4ir.Program.node_id list;  (** in execution order; non-empty *)
  exit : P4ir.Program.next;  (** the node reached after the last table *)
  is_switch_case : bool;  (** singleton Per_action pipelet *)
}

val form : ?max_len:int -> P4ir.Program.t -> t list
(** Partition all reachable table nodes into pipelets, in topological
    order. [max_len] (default 8) bounds pipelet length. Every reachable
    table node belongs to exactly one pipelet. *)

val tables : P4ir.Program.t -> t -> P4ir.Table.t list
(** The table definitions of a pipelet, in order. *)

val length : t -> int

val pp : Format.formatter -> t -> unit
