(** Materialization of heterogeneous partitions (§3.2.4).

    The paper's mechanism for running one program across ASIC and CPU
    cores: packets migrating between cores carry a [next_tab_id] metadata
    field piggybacked in a special header; each program component placed
    on a core starts with a *navigation table* that jumps to the recorded
    next table, and ends with *migration tables* that record where
    processing resumes before the packet crosses cores.

    {!materialize} rewrites a placed program so those tables exist
    explicitly: every ASIC→CPU or CPU→ASIC edge is split with a migration
    table (writes [next_tab_id], role [Migration]) that flows into the
    destination side's navigation table (switch-case on [next_tab_id],
    role [Navigation]), which dispatches to the real successor. The
    rewritten program computes the same per-packet results; the executor
    charges the extra table visits, making the §3.2.4 migration overhead
    visible in the program structure rather than only in the timing
    model. *)

val next_tab_ids : P4ir.Program.t -> (P4ir.Program.node_id * int64) list
(** The stable [next_tab_id] value assigned to each node (its position in
    topological order + 1; 0 means "not set"). *)

val materialize :
  P4ir.Program.t ->
  placement:Costmodel.Cost.placement ->
  P4ir.Program.t * Costmodel.Cost.placement
(** The rewritten program plus the placement extended to the new nodes
    (a migration table runs on the side the packet is leaving; a
    navigation table on the side it enters). Programs without crossings
    are returned unchanged. The result is validated. *)

val crossings : P4ir.Program.t -> placement:Costmodel.Cost.placement -> int
(** Number of placement-crossing edges in the graph (structure, not
    probability-weighted — see {!Placement.migrations_expected} for the
    expected per-packet count). *)
