type requirement = Any | Needs_cpu | Needs_asic

let placement_of_assoc assoc id =
  match List.assoc_opt id assoc with Some core -> core | None -> Costmodel.Cost.Asic

let naive _prog ~require id =
  match require id with
  | Needs_cpu -> Costmodel.Cost.Cpu
  | Needs_asic | Any -> Costmodel.Cost.Asic

let optimize ?(max_sweeps = 8) target prof prog ~require =
  let ids = P4ir.Program.reachable prog in
  let table = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace table id (naive prog ~require id)) ids;
  let placement id =
    match Hashtbl.find_opt table id with Some c -> c | None -> Costmodel.Cost.Asic
  in
  let latency () = Costmodel.Cost.expected_latency ~placement target prof prog in
  let flip id =
    let current = placement id in
    let other =
      match current with Costmodel.Cost.Asic -> Costmodel.Cost.Cpu | Costmodel.Cost.Cpu -> Costmodel.Cost.Asic
    in
    Hashtbl.replace table id other
  in
  let improved = ref true in
  let sweeps = ref 0 in
  while !improved && !sweeps < max_sweeps do
    improved := false;
    incr sweeps;
    List.iter
      (fun id ->
        if require id = Any then begin
          let before = latency () in
          flip id;
          let after = latency () in
          if after < before -. 1e-9 then improved := true else flip id
        end)
      ids
  done;
  placement

let migrations_expected prof prog ~placement =
  let edges = Costmodel.Cost.edge_probs prof prog in
  let crossing =
    List.fold_left
      (fun acc ((src, next), p) ->
        let src_core = placement src in
        let crosses =
          match next with
          | Some dst -> placement dst <> src_core
          | None -> src_core = Costmodel.Cost.Cpu
        in
        if crosses then acc +. p else acc)
      0. edges
  in
  let entry =
    match P4ir.Program.root prog with
    | Some r when placement r = Costmodel.Cost.Cpu -> 1.0
    | _ -> 0.
  in
  crossing +. entry
