(** Entry-update API mapping (§2.3: "Pipeleon ensures the same program
    management APIs by mapping the API calls to the original program to
    the optimized version").

    The control plane keeps issuing inserts/deletes against *original*
    table names; this module translates each call into the operations the
    *optimized* program needs: a direct update when the table survived, a
    rebuild of any merged table covering it, and an invalidation of any
    flow cache whose contents the update stales. *)

type op =
  | Direct of { table : string; insert : bool; entry : P4ir.Table.entry }
      (** plain insert (or delete of the entry's patterns) on a surviving
          table *)
  | Rebuild of { table : string; entries : P4ir.Table.entry list }
      (** replace a merged table's entries wholesale (cross-product
          recompute); its size measures the update amplification *)
  | Invalidate of string  (** clear a cache table *)

val map_insert :
  original:P4ir.Program.t ->
  optimized:P4ir.Program.t ->
  table:string ->
  P4ir.Table.entry ->
  op list
(** [original] must carry the *current* entries (the control plane's
    source of truth), already including the new entry.
    @raise Invalid_argument if [table] is not in the original program. *)

val map_delete :
  original:P4ir.Program.t ->
  optimized:P4ir.Program.t ->
  table:string ->
  P4ir.Table.entry ->
  op list
(** Same contract; [original] must already reflect the removal. *)

val pp_op : Format.formatter -> op -> unit
