(** Mutable packet representation processed by the simulator.

    A packet is a bag of header fields plus metadata slots; the executor
    reads and writes them through {!get}/{!set} keyed by {!P4ir.Field.t}.
    Values are truncated to the field width on write. *)

type t

val create : ?size_bytes:int -> unit -> t
(** A zeroed packet; [size_bytes] defaults to 512 (the paper's traffic). *)

val size_bytes : t -> int
val get : t -> P4ir.Field.t -> P4ir.Value.t
val set : t -> P4ir.Field.t -> P4ir.Value.t -> unit

val is_dropped : t -> bool
val mark_dropped : t -> unit
val egress_port : t -> int option
val set_egress : t -> int -> unit

val of_fields : ?size_bytes:int -> (P4ir.Field.t * P4ir.Value.t) list -> t
val copy : t -> t
val key_string : t -> P4ir.Field.t list -> string
(** Concatenated field values; a hashable flow key. *)

val pp : Format.formatter -> t -> unit
