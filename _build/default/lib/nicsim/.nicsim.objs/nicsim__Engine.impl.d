lib/nicsim/engine.ml: Buffer Float Hashtbl Int64 List Lru P4ir Packet Printf
