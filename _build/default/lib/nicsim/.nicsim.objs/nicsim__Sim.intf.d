lib/nicsim/sim.mli: Costmodel Exec P4ir Packet Profile
