lib/nicsim/exec.mli: Costmodel Engine P4ir Packet Profile
