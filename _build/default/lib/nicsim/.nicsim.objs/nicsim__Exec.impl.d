lib/nicsim/exec.ml: Costmodel Engine Hashtbl Int64 List Option P4ir Packet Profile
