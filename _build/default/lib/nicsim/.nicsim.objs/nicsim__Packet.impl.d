lib/nicsim/packet.ml: Array Buffer Format Int64 List P4ir
