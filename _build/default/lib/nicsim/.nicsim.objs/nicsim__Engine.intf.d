lib/nicsim/engine.mli: P4ir Packet
