lib/nicsim/packet.mli: Format P4ir
