lib/nicsim/lru.ml: Hashtbl
