lib/nicsim/lru.mli:
