lib/nicsim/sim.ml: Array Costmodel Engine Exec Float Int64 List P4ir Packet Profile
