type t = {
  mutable eth_src : int64;
  mutable eth_dst : int64;
  mutable eth_type : int64;
  mutable ipv4_src : int64;
  mutable ipv4_dst : int64;
  mutable ipv4_ttl : int64;
  mutable ipv4_proto : int64;
  mutable ipv4_dscp : int64;
  mutable ipv4_len : int64;
  mutable tcp_sport : int64;
  mutable tcp_dport : int64;
  mutable tcp_flags : int64;
  mutable udp_sport : int64;
  mutable udp_dport : int64;
  mutable ingress_port : int64;
  mutable next_tab_id : int64;
  mutable meta : int64 array;
  mutable dropped : bool;
  mutable egress : int option;
  size : int;
}

let create ?(size_bytes = 512) () =
  { eth_src = 0L; eth_dst = 0L; eth_type = 0x0800L; ipv4_src = 0L; ipv4_dst = 0L;
    ipv4_ttl = 64L; ipv4_proto = 6L; ipv4_dscp = 0L; ipv4_len = Int64.of_int size_bytes;
    tcp_sport = 0L; tcp_dport = 0L; tcp_flags = 0L; udp_sport = 0L; udp_dport = 0L;
    ingress_port = 0L; next_tab_id = 0L; meta = Array.make 16 0L; dropped = false;
    egress = None; size = size_bytes }

let size_bytes p = p.size

let ensure_meta p i =
  if i >= Array.length p.meta then begin
    let bigger = Array.make (i + 1) 0L in
    Array.blit p.meta 0 bigger 0 (Array.length p.meta);
    p.meta <- bigger
  end

let get p (f : P4ir.Field.t) =
  match f with
  | P4ir.Field.Eth_src -> p.eth_src
  | P4ir.Field.Eth_dst -> p.eth_dst
  | P4ir.Field.Eth_type -> p.eth_type
  | P4ir.Field.Ipv4_src -> p.ipv4_src
  | P4ir.Field.Ipv4_dst -> p.ipv4_dst
  | P4ir.Field.Ipv4_ttl -> p.ipv4_ttl
  | P4ir.Field.Ipv4_proto -> p.ipv4_proto
  | P4ir.Field.Ipv4_dscp -> p.ipv4_dscp
  | P4ir.Field.Ipv4_len -> p.ipv4_len
  | P4ir.Field.Tcp_sport -> p.tcp_sport
  | P4ir.Field.Tcp_dport -> p.tcp_dport
  | P4ir.Field.Tcp_flags -> p.tcp_flags
  | P4ir.Field.Udp_sport -> p.udp_sport
  | P4ir.Field.Udp_dport -> p.udp_dport
  | P4ir.Field.Ingress_port -> p.ingress_port
  | P4ir.Field.Next_tab_id -> p.next_tab_id
  | P4ir.Field.Meta i ->
    if i < Array.length p.meta then p.meta.(i) else 0L

let set p (f : P4ir.Field.t) v =
  let v = P4ir.Value.truncate ~width:(P4ir.Field.width f) v in
  match f with
  | P4ir.Field.Eth_src -> p.eth_src <- v
  | P4ir.Field.Eth_dst -> p.eth_dst <- v
  | P4ir.Field.Eth_type -> p.eth_type <- v
  | P4ir.Field.Ipv4_src -> p.ipv4_src <- v
  | P4ir.Field.Ipv4_dst -> p.ipv4_dst <- v
  | P4ir.Field.Ipv4_ttl -> p.ipv4_ttl <- v
  | P4ir.Field.Ipv4_proto -> p.ipv4_proto <- v
  | P4ir.Field.Ipv4_dscp -> p.ipv4_dscp <- v
  | P4ir.Field.Ipv4_len -> p.ipv4_len <- v
  | P4ir.Field.Tcp_sport -> p.tcp_sport <- v
  | P4ir.Field.Tcp_dport -> p.tcp_dport <- v
  | P4ir.Field.Tcp_flags -> p.tcp_flags <- v
  | P4ir.Field.Udp_sport -> p.udp_sport <- v
  | P4ir.Field.Udp_dport -> p.udp_dport <- v
  | P4ir.Field.Ingress_port -> p.ingress_port <- v
  | P4ir.Field.Next_tab_id -> p.next_tab_id <- v
  | P4ir.Field.Meta i ->
    ensure_meta p i;
    p.meta.(i) <- v

let is_dropped p = p.dropped
let mark_dropped p = p.dropped <- true
let egress_port p = p.egress
let set_egress p port = p.egress <- Some port

let of_fields ?size_bytes fields =
  let p = create ?size_bytes () in
  List.iter (fun (f, v) -> set p f v) fields;
  p

let copy p = { p with meta = Array.copy p.meta }

let key_string p fields =
  let buf = Buffer.create 32 in
  List.iter
    (fun f ->
      Buffer.add_int64_le buf (get p f);
      Buffer.add_char buf '|')
    fields;
  Buffer.contents buf

let pp fmt p =
  Format.fprintf fmt "pkt{src=%Lx dst=%Lx sport=%Ld dport=%Ld%s}" p.ipv4_src p.ipv4_dst
    p.tcp_sport p.tcp_dport
    (if p.dropped then " DROPPED" else "")
