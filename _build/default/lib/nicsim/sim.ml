type t = {
  tgt : Costmodel.Target.t;
  mutable ex : Exec.t;
  mutable clock : float;
  mutable counter_baseline : Profile.Counter.t;
  mutable last_profile_time : float;
}

let create ?config tgt prog =
  let cfg = match config with Some c -> c | None -> Exec.default_config tgt in
  { tgt;
    ex = Exec.create cfg prog;
    clock = 0.;
    counter_baseline = Profile.Counter.create ();
    last_profile_time = 0. }

let exec t = t.ex
let target t = t.tgt
let now t = t.clock
let advance t dt = t.clock <- t.clock +. Float.max 0. dt

type window_stats = {
  window_start : float;
  window_duration : float;
  sampled_packets : int;
  sampled_drops : int;
  avg_latency : float;
  p99_latency : float;
  throughput_gbps : float;
  drop_fraction : float;
}

let run_window t ~duration ~packets ~source =
  if packets <= 0 then invalid_arg "Sim.run_window: packets must be positive";
  let start = t.clock in
  let latencies = Array.make packets 0. in
  let drops = ref 0 in
  for i = 0 to packets - 1 do
    let pkt_time = start +. (duration *. float_of_int i /. float_of_int packets) in
    let pkt = source () in
    latencies.(i) <- Exec.run_packet t.ex ~now:pkt_time pkt;
    if Packet.is_dropped pkt then incr drops
  done;
  t.clock <- start +. duration;
  let sum = Array.fold_left ( +. ) 0. latencies in
  let avg = sum /. float_of_int packets in
  Array.sort compare latencies;
  let p99 = latencies.(min (packets - 1) (packets * 99 / 100)) in
  { window_start = start;
    window_duration = duration;
    sampled_packets = packets;
    sampled_drops = !drops;
    avg_latency = avg;
    p99_latency = p99;
    throughput_gbps = Costmodel.Target.throughput_gbps t.tgt ~latency:avg;
    drop_fraction = float_of_int !drops /. float_of_int packets }

let insert t ~table entry = Engine.insert (Exec.engine_exn t.ex table) entry

let delete t ~table ~patterns = Engine.delete (Exec.engine_exn t.ex table) ~patterns

let reconfigure ?config ?(downtime = 0.) t prog =
  let cfg = match config with Some c -> c | None -> Exec.config t.ex in
  let old_ex = t.ex in
  let fresh = Exec.create cfg prog in
  (* Live reconfiguration keeps the dynamic state of surviving tables;
     caches restart cold. *)
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      match tab.role with
      | P4ir.Table.Cache _ -> ()
      | _ -> (
        match Exec.engine old_ex tab.name with
        | Some old_engine ->
          Engine.load_entries (Exec.engine_exn fresh tab.name) (Engine.entries old_engine)
        | None -> ()))
    (P4ir.Program.tables prog);
  t.ex <- fresh;
  t.counter_baseline <- Profile.Counter.create ();
  advance t downtime

let hot_patch ?(downtime_per_table = 0.02) t prog =
  let changed = Exec.replace_program t.ex prog in
  advance t (downtime_per_table *. float_of_int changed);
  changed

let current_profile ?window t =
  let elapsed =
    match window with
    | Some w -> w
    | None -> Float.max 1e-9 (t.clock -. t.last_profile_time)
  in
  t.last_profile_time <- t.clock;
  let current = Exec.counters t.ex in
  let delta = Profile.Counter.diff ~current ~baseline:t.counter_baseline in
  t.counter_baseline <- Profile.Counter.snapshot current;
  (* Record control-plane update rates as ["update"]-labelled counts so
     Profile.of_counters picks them up. *)
  let prog = Exec.program t.ex in
  List.iter
    (fun (_, (tab : P4ir.Table.t)) ->
      match Exec.engine t.ex tab.name with
      | Some eng ->
        let updates = Engine.take_update_count eng in
        if updates > 0 then
          Profile.Counter.incr ~by:(Int64.of_int updates) delta ~owner:tab.name
            ~label:"update"
      | None -> ())
    (P4ir.Program.tables prog);
  Profile.of_counters ~window:elapsed prog delta
