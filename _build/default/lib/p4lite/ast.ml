(* Surface AST of P4-lite. Line numbers are kept for error reporting
   during lowering. *)

type primitive =
  | Set_const of string * int64  (* field = value *)
  | Set_copy of string * string  (* field = field *)
  | Add_const of string * int64  (* field += value *)
  | Dec_ttl
  | Forward of int
  | Drop
  | Nop

type action_decl = { a_name : string; a_body : primitive list; a_line : int }

type key_decl = { k_field : string; k_kind : string; k_line : int }

type pattern =
  | P_exact of int64
  | P_lpm of int64 * int  (* value / prefix_len *)
  | P_ternary of int64 * int64  (* value &&& mask *)
  | P_range of int64 * int64  (* lo .. hi *)
  | P_wild  (* _ : any value (kind-appropriate wildcard) *)

type entry_decl = {
  e_patterns : pattern list;
  e_action : string;
  e_priority : int;
  e_line : int;
}

type table_decl = {
  t_name : string;
  t_keys : key_decl list;
  t_actions : string list;
  t_default : string option;
  t_size : int option;
  t_entries : entry_decl list;
  t_line : int;
}

type cmp = C_eq | C_neq | C_lt | C_gt | C_le | C_ge

type statement =
  | Apply of string * int  (* table name, line *)
  | If of condition * statement list * statement list
  | Switch of string * (string * statement list) list * statement list option * int
      (* table, cases by action name, optional default block *)

and condition = { c_field : string; c_op : cmp; c_value : int64; c_line : int }

type program = {
  p_name : string;
  p_actions : action_decl list;
  p_tables : table_decl list;
  p_control : statement list;
}
