(** Recursive-descent parser for P4-lite.

    Grammar sketch:
    {v
    program    ::= "program" ident ";" (action | table)* control
    action     ::= "action" ident "{" primitive* "}"
    primitive  ::= field "=" (number | field) ";"
                 | field "+=" number ";"
                 | "dec_ttl" ";" | "drop" ";" | "nop" ";"
                 | "forward" "(" number ")" ";"
    table      ::= "table" ident "{" table_item* "}"
    table_item ::= "key" "=" "{" (field ":" kind ";")* "}"
                 | "actions" "=" "{" (ident ";")* "}"
                 | "default_action" "=" ident ";"
                 | "size" "=" number ";"
                 | "entries" "=" "{" entry* "}"
    entry      ::= "(" pattern ("," pattern)* ")" "->" ident
                   ["priority" number] ";"
    pattern    ::= number | number "/" number | number "&&&" number
                 | number ".." number | "_"
    control    ::= "control" "{" stmt* "}"
    stmt       ::= "apply" ident ";"
                 | "if" "(" field cmp number ")" block ["else" block]
                 | "switch" "(" ident ")" "{" ("case" ident ":" block)*
                   ["default" ":" block] "}"
    v} *)

exception Error of string

val parse : string -> Ast.program
(** @raise Error with a line-located message. *)
