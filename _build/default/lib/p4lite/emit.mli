(** Emit a {!P4ir.Program} back to P4-lite source (the inverse of
    {!Lower}), reconstructing structured control flow from the DAG via
    immediate postdominators.

    Action names are globalized: P4-lite declares actions at top level,
    so per-table actions are emitted once per distinct (name, body) and
    renamed when two tables use the same name for different bodies.
    Fused cache/merge action names are sanitized into identifiers. Table
    roles (cache / merged provenance) are not representable in the
    surface syntax and are dropped — emit optimized programs through
    {!P4ir.Serialize} when provenance matters. *)

exception Unstructured of string
(** The DAG cannot be expressed with if/switch/apply nesting. Programs
    produced by {!Lower} and by Pipeleon's transformations always can. *)

val emit : P4ir.Program.t -> string
(** @raise Unstructured. *)
