(* Tokens of the P4-lite surface language. *)

type t =
  | Ident of string  (* possibly dotted: ipv4.src, meta.3 *)
  | Number of int64
  | Kw_program
  | Kw_action
  | Kw_table
  | Kw_control
  | Kw_key
  | Kw_actions
  | Kw_default_action
  | Kw_size
  | Kw_entries
  | Kw_apply
  | Kw_if
  | Kw_else
  | Kw_switch
  | Kw_case
  | Kw_default
  | Kw_priority
  | Kw_drop
  | Kw_forward
  | Kw_dec_ttl
  | Kw_nop
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Colon
  | Comma
  | Arrow  (* -> *)
  | Assign  (* = *)
  | Plus_assign  (* += *)
  | Amp3  (* &&& *)
  | Dotdot  (* .. *)
  | Slash
  | Underscore
  | Eq  (* == *)
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | Eof

let keyword_of_string = function
  | "program" -> Some Kw_program
  | "action" -> Some Kw_action
  | "table" -> Some Kw_table
  | "control" -> Some Kw_control
  | "key" -> Some Kw_key
  | "actions" -> Some Kw_actions
  | "default_action" -> Some Kw_default_action
  | "size" -> Some Kw_size
  | "entries" -> Some Kw_entries
  | "apply" -> Some Kw_apply
  | "if" -> Some Kw_if
  | "else" -> Some Kw_else
  | "switch" -> Some Kw_switch
  | "case" -> Some Kw_case
  | "default" -> Some Kw_default
  | "priority" -> Some Kw_priority
  | "drop" -> Some Kw_drop
  | "forward" -> Some Kw_forward
  | "dec_ttl" -> Some Kw_dec_ttl
  | "nop" -> Some Kw_nop
  | _ -> None

let to_string = function
  | Ident s -> s
  | Number n -> Int64.to_string n
  | Kw_program -> "program"
  | Kw_action -> "action"
  | Kw_table -> "table"
  | Kw_control -> "control"
  | Kw_key -> "key"
  | Kw_actions -> "actions"
  | Kw_default_action -> "default_action"
  | Kw_size -> "size"
  | Kw_entries -> "entries"
  | Kw_apply -> "apply"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_switch -> "switch"
  | Kw_case -> "case"
  | Kw_default -> "default"
  | Kw_priority -> "priority"
  | Kw_drop -> "drop"
  | Kw_forward -> "forward"
  | Kw_dec_ttl -> "dec_ttl"
  | Kw_nop -> "nop"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Arrow -> "->"
  | Assign -> "="
  | Plus_assign -> "+="
  | Amp3 -> "&&&"
  | Dotdot -> ".."
  | Slash -> "/"
  | Underscore -> "_"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eof -> "<eof>"
