exception Error of string

let fail line msg = raise (Error (Printf.sprintf "lowering error at line %d: %s" line msg))

let field_of line name =
  match P4ir.Field.of_string name with
  | f -> f
  | exception Invalid_argument _ -> fail line ("unknown field: " ^ name)

let lower_primitive line (p : Ast.primitive) : P4ir.Action.primitive =
  match p with
  | Ast.Set_const (f, v) -> P4ir.Action.Set_field (field_of line f, v)
  | Ast.Set_copy (dst, src) -> P4ir.Action.Set_from (field_of line dst, field_of line src)
  | Ast.Add_const (f, v) -> P4ir.Action.Add_const (field_of line f, v)
  | Ast.Dec_ttl -> P4ir.Action.Dec_ttl
  | Ast.Forward port -> P4ir.Action.Forward port
  | Ast.Drop -> P4ir.Action.Drop
  | Ast.Nop -> P4ir.Action.Nop

let lower_action (a : Ast.action_decl) =
  P4ir.Action.make a.a_name (List.map (lower_primitive a.a_line) a.a_body)

let kind_of line s =
  match P4ir.Match_kind.of_string s with
  | k -> k
  | exception Invalid_argument _ -> fail line ("unknown match kind: " ^ s)

let lower_pattern line (kind : P4ir.Match_kind.t) (p : Ast.pattern) : P4ir.Pattern.t =
  match (p, kind) with
  | Ast.P_wild, P4ir.Match_kind.Exact -> fail line "'_' is not allowed for an exact key"
  | Ast.P_wild, k -> P4ir.Pattern.wildcard k
  | Ast.P_exact v, P4ir.Match_kind.Exact -> P4ir.Pattern.Exact v
  | Ast.P_exact v, P4ir.Match_kind.Lpm ->
    (* A bare value on an LPM key means a host route (full prefix). *)
    P4ir.Pattern.Lpm (v, 32)
  | Ast.P_exact v, P4ir.Match_kind.Ternary -> P4ir.Pattern.Ternary (v, Int64.minus_one)
  | Ast.P_exact v, P4ir.Match_kind.Range -> P4ir.Pattern.Range (v, v)
  | Ast.P_lpm (v, len), P4ir.Match_kind.Lpm -> P4ir.Pattern.Lpm (v, len)
  | Ast.P_ternary (v, m), P4ir.Match_kind.Ternary -> P4ir.Pattern.Ternary (v, m)
  | Ast.P_range (lo, hi), P4ir.Match_kind.Range -> P4ir.Pattern.Range (lo, hi)
  | (Ast.P_lpm _ | Ast.P_ternary _ | Ast.P_range _), k ->
    fail line
      (Printf.sprintf "pattern does not fit a %s key" (P4ir.Match_kind.to_string k))

let lower_table actions (t : Ast.table_decl) =
  let keys =
    List.map
      (fun (k : Ast.key_decl) ->
        P4ir.Table.key (field_of k.k_line k.k_field) (kind_of k.k_line k.k_kind))
      t.t_keys
  in
  let resolve name =
    match List.find_opt (fun (a : P4ir.Action.t) -> String.equal a.name name) actions with
    | Some a -> a
    | None -> fail t.t_line ("unknown action: " ^ name)
  in
  let table_actions = List.map resolve t.t_actions in
  if table_actions = [] then fail t.t_line ("table " ^ t.t_name ^ " has no actions");
  let default =
    match t.t_default with
    | Some d ->
      if not (List.mem d t.t_actions) then
        fail t.t_line ("default_action " ^ d ^ " is not among the table's actions");
      d
    | None -> (List.hd table_actions).P4ir.Action.name
  in
  let entries =
    List.map
      (fun (e : Ast.entry_decl) ->
        if List.length e.e_patterns <> List.length keys then
          fail e.e_line "entry arity does not match the key";
        let patterns =
          List.map2
            (fun (k : P4ir.Table.key) p -> lower_pattern e.e_line k.kind p)
            keys e.e_patterns
        in
        P4ir.Table.entry ~priority:e.e_priority patterns e.e_action)
      t.t_entries
  in
  match
    P4ir.Table.make ~name:t.t_name ~keys ~actions:table_actions ~default_action:default
      ?max_entries:t.t_size ~entries ()
  with
  | tab -> tab
  | exception Invalid_argument msg -> fail t.t_line msg

let cmp_of = function
  | Ast.C_eq -> P4ir.Program.Eq
  | Ast.C_neq -> P4ir.Program.Neq
  | Ast.C_lt -> P4ir.Program.Lt
  | Ast.C_gt -> P4ir.Program.Gt
  | Ast.C_le -> P4ir.Program.Le
  | Ast.C_ge -> P4ir.Program.Ge

let lower (p : Ast.program) =
  let actions = List.map lower_action p.p_actions in
  (match
     List.sort_uniq compare (List.map (fun (a : P4ir.Action.t) -> a.name) actions)
   with
   | names when List.length names <> List.length actions ->
     raise (Error "duplicate action names")
   | _ -> ());
  let tables = List.map (lower_table actions) p.p_tables in
  let find_table line name =
    match List.find_opt (fun (t : P4ir.Table.t) -> String.equal t.name name) tables with
    | Some t -> t
    | None -> fail line ("unknown table: " ^ name)
  in
  let applied = Hashtbl.create 16 in
  let mark_applied line name =
    if Hashtbl.mem applied name then fail line ("table applied more than once: " ^ name);
    Hashtbl.replace applied name ()
  in
  let cond_counter = ref 0 in
  (* Lower statements back to front: each statement receives its
     continuation and yields its entry node. *)
  let rec lower_block prog stmts (next : P4ir.Program.next) =
    List.fold_left
      (fun (prog, next) stmt -> lower_statement prog stmt next)
      (prog, next) (List.rev stmts)
  and lower_statement prog (stmt : Ast.statement) next =
    match stmt with
    | Ast.Apply (name, line) ->
      mark_applied line name;
      let tab = find_table line name in
      let prog, id =
        P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Uniform next))
      in
      (prog, Some id)
    | Ast.If (c, then_block, else_block) ->
      let prog, then_entry = lower_block prog then_block next in
      let prog, else_entry = lower_block prog else_block next in
      incr cond_counter;
      let cond =
        { P4ir.Program.cond_name = Printf.sprintf "if_l%d_%d" c.c_line !cond_counter;
          field = field_of c.c_line c.c_field;
          op = cmp_of c.c_op;
          arg = c.c_value;
          on_true = then_entry;
          on_false = else_entry }
      in
      let prog, id = P4ir.Program.add_node prog (P4ir.Program.Cond cond) in
      (prog, Some id)
    | Ast.Switch (name, cases, default, line) ->
      mark_applied line name;
      let tab = find_table line name in
      let prog, default_entry =
        match default with
        | Some block -> lower_block prog block next
        | None -> (prog, next)
      in
      let prog, case_entries =
        List.fold_left
          (fun (prog, acc) (action, block) ->
            if P4ir.Table.find_action tab action = None then
              fail line ("case on unknown action: " ^ action);
            let prog, entry = lower_block prog block next in
            (prog, (action, entry) :: acc))
          (prog, []) cases
      in
      let branches =
        List.map
          (fun (a : P4ir.Action.t) ->
            match List.assoc_opt a.name case_entries with
            | Some entry -> (a.name, entry)
            | None -> (a.name, default_entry))
          tab.P4ir.Table.actions
      in
      let prog, id =
        P4ir.Program.add_node prog (P4ir.Program.Table (tab, P4ir.Program.Per_action branches))
      in
      (prog, Some id)
  in
  let prog, root = lower_block (P4ir.Program.empty p.p_name) p.p_control None in
  let prog = P4ir.Program.with_root prog root in
  (match P4ir.Program.validate prog with
   | Ok () -> ()
   | Error msg -> raise (Error ("lowered program is invalid: " ^ msg)));
  prog

let parse_program src = lower (Parser.parse src)

let load_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_program content
