(** Lowering from the P4-lite AST to the {!P4ir.Program} graph IR.

    Control flow becomes the DAG: [apply] chains tables, [if] becomes a
    conditional node whose arms rejoin at the continuation, and [switch]
    turns its table into a switch-case (per-action successors). Each
    table may be applied at most once (the IR gives every applied table
    one node). *)

exception Error of string
(** Message carries the source line where lowering failed. *)

val lower : Ast.program -> P4ir.Program.t
(** @raise Error on unknown fields/actions/tables, kind mismatches,
    duplicate or missing applications, or invalid patterns. The result is
    validated. *)

val parse_program : string -> P4ir.Program.t
(** [lower] composed with {!Parser.parse}; raises {!Error} or
    {!Parser.Error}. *)

val load_file : string -> P4ir.Program.t
(** Parse and lower a [.p4l] file. *)
