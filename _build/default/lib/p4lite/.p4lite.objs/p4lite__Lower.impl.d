lib/p4lite/lower.ml: Ast Fun Hashtbl Int64 List P4ir Parser Printf String
