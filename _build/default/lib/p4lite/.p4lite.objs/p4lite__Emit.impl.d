lib/p4lite/emit.ml: Buffer Hashtbl Int List P4ir Printf Set String
