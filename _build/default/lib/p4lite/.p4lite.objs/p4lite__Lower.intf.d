lib/p4lite/lower.mli: Ast P4ir
