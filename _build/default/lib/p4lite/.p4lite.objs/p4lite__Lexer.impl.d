lib/p4lite/lexer.ml: Int64 List Printf String Token
