lib/p4lite/lexer.mli: Token
