lib/p4lite/token.ml: Int64
