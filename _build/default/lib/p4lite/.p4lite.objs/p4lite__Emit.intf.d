lib/p4lite/emit.mli: P4ir
