lib/p4lite/ast.ml:
