lib/p4lite/parser.mli: Ast
