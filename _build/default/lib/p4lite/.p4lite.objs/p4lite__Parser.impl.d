lib/p4lite/parser.ml: Ast Int64 Lexer List Printf Token
