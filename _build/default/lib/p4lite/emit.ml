exception Unstructured of string

module IntSet = Set.Make (Int)

let exit_id = -1

(* Postdominator sets over the DAG, treating the sink as a virtual node.
   pd(n) = {n} ∪ ⋂ pd(succ); computed in reverse topological order. *)
let postdominators prog =
  let order = List.rev (P4ir.Program.topological_order prog) in
  let pd = Hashtbl.create 16 in
  Hashtbl.replace pd exit_id (IntSet.singleton exit_id);
  List.iter
    (fun id ->
      let succs =
        P4ir.Program.out_edges prog id
        |> List.map (fun (_, nxt) -> match nxt with Some s -> s | None -> exit_id)
        |> List.sort_uniq compare
      in
      let meet =
        match succs with
        | [] -> IntSet.singleton exit_id
        | first :: rest ->
          List.fold_left
            (fun acc s -> IntSet.inter acc (Hashtbl.find pd s))
            (Hashtbl.find pd first) rest
      in
      Hashtbl.replace pd id (IntSet.add id meet))
    order;
  pd

(* The closest strict postdominator: the one with the largest pd set
   (postdominators of a node form a chain). *)
let ipostdom pd id =
  let strict = IntSet.remove id (Hashtbl.find pd id) in
  IntSet.fold
    (fun candidate best ->
      match best with
      | None -> Some candidate
      | Some b ->
        if IntSet.cardinal (Hashtbl.find pd candidate) > IntSet.cardinal (Hashtbl.find pd b)
        then Some candidate
        else best)
    strict None
  |> function
  | Some x -> x
  | None -> raise (Unstructured (Printf.sprintf "node %d has no postdominator" id))

(* --- global action naming --- *)

type naming = {
  mutable bindings : ((string * string) * string) list;  (* (table, action) -> global *)
  mutable emitted : (string * P4ir.Action.primitive list) list;  (* global -> body *)
}

let sanitize name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
      then Buffer.add_char buf c
      else Buffer.add_char buf '_')
    name;
  let s = Buffer.contents buf in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "a" ^ s else s

let global_name naming (tab : P4ir.Table.t) (a : P4ir.Action.t) =
  match List.assoc_opt (tab.name, a.name) naming.bindings with
  | Some g -> g
  | None ->
    let base = sanitize a.name in
    let rec pick candidate n =
      match List.assoc_opt candidate naming.emitted with
      | None ->
        naming.emitted <- (candidate, a.prims) :: naming.emitted;
        candidate
      | Some body when body = a.prims -> candidate
      | Some _ -> pick (Printf.sprintf "%s_%d" base n) (n + 1)
    in
    let g = pick base 1 in
    naming.bindings <- ((tab.name, a.name), g) :: naming.bindings;
    g

(* --- printers --- *)

let pp_primitive buf (p : P4ir.Action.primitive) =
  match p with
  | P4ir.Action.Set_field (f, v) ->
    Buffer.add_string buf (Printf.sprintf "  %s = %Ld;\n" (P4ir.Field.to_string f) v)
  | P4ir.Action.Set_from (d, s) ->
    Buffer.add_string buf
      (Printf.sprintf "  %s = %s;\n" (P4ir.Field.to_string d) (P4ir.Field.to_string s))
  | P4ir.Action.Add_const (f, v) ->
    Buffer.add_string buf (Printf.sprintf "  %s += %Ld;\n" (P4ir.Field.to_string f) v)
  | P4ir.Action.Dec_ttl -> Buffer.add_string buf "  dec_ttl;\n"
  | P4ir.Action.Forward port -> Buffer.add_string buf (Printf.sprintf "  forward(%d);\n" port)
  | P4ir.Action.Drop -> Buffer.add_string buf "  drop;\n"
  | P4ir.Action.Nop -> Buffer.add_string buf "  nop;\n"

let pp_pattern buf (p : P4ir.Pattern.t) =
  if P4ir.Pattern.is_wildcard p then Buffer.add_string buf "_"
  else
    match p with
    | P4ir.Pattern.Exact v -> Buffer.add_string buf (Printf.sprintf "%Ld" v)
    | P4ir.Pattern.Lpm (v, len) -> Buffer.add_string buf (Printf.sprintf "%Ld/%d" v len)
    | P4ir.Pattern.Ternary (v, m) ->
      Buffer.add_string buf (Printf.sprintf "%Ld &&& %Ld" v m)
    | P4ir.Pattern.Range (lo, hi) -> Buffer.add_string buf (Printf.sprintf "%Ld..%Ld" lo hi)

let pp_table buf naming (tab : P4ir.Table.t) =
  Buffer.add_string buf (Printf.sprintf "table %s {\n" (sanitize tab.name));
  Buffer.add_string buf "  key = {";
  List.iter
    (fun (k : P4ir.Table.key) ->
      Buffer.add_string buf
        (Printf.sprintf " %s : %s;" (P4ir.Field.to_string k.field)
           (P4ir.Match_kind.to_string k.kind)))
    tab.keys;
  Buffer.add_string buf " }\n";
  Buffer.add_string buf "  actions = {";
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf " %s;" (global_name naming tab a)))
    tab.actions;
  Buffer.add_string buf " }\n";
  Buffer.add_string buf
    (Printf.sprintf "  default_action = %s;\n"
       (global_name naming tab (P4ir.Table.find_action_exn tab tab.default_action)));
  Buffer.add_string buf (Printf.sprintf "  size = %d;\n" tab.max_entries);
  if tab.entries <> [] then begin
    Buffer.add_string buf "  entries = {\n";
    List.iter
      (fun (e : P4ir.Table.entry) ->
        Buffer.add_string buf "    (";
        List.iteri
          (fun i p ->
            if i > 0 then Buffer.add_string buf ", ";
            pp_pattern buf p)
          e.patterns;
        Buffer.add_string buf
          (Printf.sprintf ") -> %s"
             (global_name naming tab (P4ir.Table.find_action_exn tab e.action)));
        if e.priority <> 0 then Buffer.add_string buf (Printf.sprintf " priority %d" e.priority);
        Buffer.add_string buf ";\n")
      tab.entries;
    Buffer.add_string buf "  }\n"
  end;
  Buffer.add_string buf "}\n\n"

let cmp_to_string = function
  | P4ir.Program.Eq -> "=="
  | P4ir.Program.Neq -> "!="
  | P4ir.Program.Lt -> "<"
  | P4ir.Program.Gt -> ">"
  | P4ir.Program.Le -> "<="
  | P4ir.Program.Ge -> ">="

let emit prog =
  let pd = postdominators prog in
  let naming = { bindings = []; emitted = [] } in
  let control = Buffer.create 512 in
  let indent n = String.make (2 * n) ' ' in
  (* Emit the region from [node] up to (excluding) [stop]. *)
  let rec emit_seq depth node stop =
    let node_id = match node with Some id -> id | None -> exit_id in
    if node_id <> stop && node_id <> exit_id then begin
      match P4ir.Program.find_exn prog node_id with
      | P4ir.Program.Table (tab, P4ir.Program.Uniform next) ->
        Buffer.add_string control (Printf.sprintf "%sapply %s;\n" (indent depth) (sanitize tab.name));
        emit_seq depth next stop
      | P4ir.Program.Table (tab, P4ir.Program.Per_action branches) ->
        let merge = ipostdom pd node_id in
        Buffer.add_string control
          (Printf.sprintf "%sswitch (%s) {\n" (indent depth) (sanitize tab.name));
        List.iter
          (fun (aname, target) ->
            let target_id = match target with Some id -> id | None -> exit_id in
            if target_id <> merge then begin
              Buffer.add_string control
                (Printf.sprintf "%scase %s: {\n" (indent (depth + 1))
                   (global_name naming tab (P4ir.Table.find_action_exn tab aname)));
              emit_seq (depth + 2) target merge;
              Buffer.add_string control (Printf.sprintf "%s}\n" (indent (depth + 1)))
            end)
          branches;
        Buffer.add_string control (Printf.sprintf "%s}\n" (indent depth));
        emit_seq depth (if merge = exit_id then None else Some merge) stop
      | P4ir.Program.Cond c ->
        let merge = ipostdom pd node_id in
        Buffer.add_string control
          (Printf.sprintf "%sif (%s %s %Ld) {\n" (indent depth)
             (P4ir.Field.to_string c.field) (cmp_to_string c.op) c.arg);
        emit_seq (depth + 1) c.on_true merge;
        let false_id = match c.on_false with Some id -> id | None -> exit_id in
        if false_id <> merge then begin
          Buffer.add_string control (Printf.sprintf "%s} else {\n" (indent depth));
          emit_seq (depth + 1) c.on_false merge
        end;
        Buffer.add_string control (Printf.sprintf "%s}\n" (indent depth));
        emit_seq depth (if merge = exit_id then None else Some merge) stop
    end
  in
  emit_seq 1 (P4ir.Program.root prog) exit_id;
  (* Tables and actions are discovered while emitting the control block
     (global_name fills the naming tables), but we also need names for
     tables' own action lists; walk all tables now. *)
  let tables_buf = Buffer.create 512 in
  List.iter
    (fun (_, tab) -> pp_table tables_buf naming tab)
    (P4ir.Program.tables prog);
  let actions_buf = Buffer.create 512 in
  (* naming.emitted is in reverse discovery order. *)
  List.iter
    (fun (gname, prims) ->
      Buffer.add_string actions_buf (Printf.sprintf "action %s {\n" gname);
      List.iter (fun p -> pp_primitive actions_buf p) prims;
      Buffer.add_string actions_buf "}\n\n")
    (List.rev naming.emitted);
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "program %s;\n\n" (sanitize (P4ir.Program.name prog)));
  Buffer.add_buffer buf actions_buf;
  Buffer.add_buffer buf tables_buf;
  Buffer.add_string buf "control {\n";
  Buffer.add_buffer buf control;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
