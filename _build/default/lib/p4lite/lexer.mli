(** Lexer for the P4-lite surface language.

    Supports `//` line comments and `/* */` block comments, decimal and
    hex numbers, IPv4 dotted quads (lexed as one [Number]), and dotted
    identifiers ([ipv4.src], [meta.3]). *)

type located = { token : Token.t; line : int; col : int }

exception Error of string
(** Message includes line and column. *)

val tokenize : string -> located list
(** The whole input, ending with an [Eof] token. @raise Error. *)
