(* Unit tests for the p4ir library: values, patterns, actions, tables,
   the program DAG, dependency analysis, and JSON round-trips. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Value --- *)

let test_truncate () =
  check_bool "truncate 8-bit" true (Int64.equal (P4ir.Value.truncate ~width:8 0x1FFL) 0xFFL);
  check_bool "truncate 64-bit is identity" true
    (Int64.equal (P4ir.Value.truncate ~width:64 Int64.minus_one) Int64.minus_one);
  check_bool "truncate 1-bit" true (Int64.equal (P4ir.Value.truncate ~width:1 3L) 1L)

let test_prefix_mask () =
  check_bool "/24 of 32" true
    (Int64.equal (P4ir.Value.prefix_mask ~width:32 ~prefix_len:24) 0xFFFFFF00L);
  check_bool "/0" true (Int64.equal (P4ir.Value.prefix_mask ~width:32 ~prefix_len:0) 0L);
  check_bool "/32 full" true
    (Int64.equal (P4ir.Value.prefix_mask ~width:32 ~prefix_len:32) 0xFFFFFFFFL);
  check_bool "overlong clamps" true
    (Int64.equal (P4ir.Value.prefix_mask ~width:16 ~prefix_len:99) 0xFFFFL)

let test_in_range () =
  check_bool "unsigned range" true (P4ir.Value.in_range ~lo:10L ~hi:20L 15L);
  check_bool "below" false (P4ir.Value.in_range ~lo:10L ~hi:20L 9L);
  check_bool "unsigned wraparound" true
    (P4ir.Value.in_range ~lo:0L ~hi:Int64.minus_one 123456L)

(* --- Field --- *)

let test_field_roundtrip () =
  List.iter
    (fun f ->
      check_bool
        ("roundtrip " ^ P4ir.Field.to_string f)
        true
        (P4ir.Field.equal f (P4ir.Field.of_string (P4ir.Field.to_string f))))
    (P4ir.Field.Meta 7 :: P4ir.Field.all_standard)

let test_field_width () =
  check_int "ipv4 src" 32 (P4ir.Field.width P4ir.Field.Ipv4_src);
  check_int "eth src" 48 (P4ir.Field.width P4ir.Field.Eth_src);
  check_bool "max value 8-bit" true
    (Int64.equal (P4ir.Field.max_value P4ir.Field.Ipv4_ttl) 255L)

let test_field_bad_name () =
  Alcotest.check_raises "bad field" (Invalid_argument "Field.of_string: nope") (fun () ->
      ignore (P4ir.Field.of_string "nope"))

(* --- Pattern --- *)

let test_pattern_matches () =
  let w = 32 in
  check_bool "exact hit" true (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Exact 5L) 5L);
  check_bool "exact miss" false (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Exact 5L) 6L);
  check_bool "lpm hit" true
    (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Lpm (0x0A000000L, 8)) 0x0A0B0C0DL);
  check_bool "lpm miss" false
    (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Lpm (0x0A000000L, 8)) 0x0B000000L);
  check_bool "ternary wildcard" true
    (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Ternary (0L, 0L)) 42L);
  check_bool "range" true
    (P4ir.Pattern.matches ~width:w (P4ir.Pattern.Range (10L, 20L)) 20L)

let test_pattern_specificity () =
  check_int "exact" 64 (P4ir.Pattern.specificity (P4ir.Pattern.Exact 1L));
  check_int "lpm 24" 24 (P4ir.Pattern.specificity (P4ir.Pattern.Lpm (0L, 24)));
  check_int "ternary popcount" 8
    (P4ir.Pattern.specificity (P4ir.Pattern.Ternary (0L, 0xFFL)))

let test_wildcards () =
  check_bool "lpm wildcard" true (P4ir.Pattern.is_wildcard (P4ir.Pattern.wildcard P4ir.Match_kind.Lpm));
  check_bool "ternary wildcard" true
    (P4ir.Pattern.is_wildcard (P4ir.Pattern.wildcard P4ir.Match_kind.Ternary));
  Alcotest.check_raises "exact has none"
    (Invalid_argument "Pattern.wildcard: exact has no wildcard") (fun () ->
      ignore (P4ir.Pattern.wildcard P4ir.Match_kind.Exact))

(* --- Action --- *)

let test_action_sets () =
  let a =
    P4ir.Action.make "a"
      [ P4ir.Action.Set_from (P4ir.Field.Meta 0, P4ir.Field.Ipv4_src);
        P4ir.Action.Dec_ttl ]
  in
  check_bool "reads src+ttl" true
    (P4ir.Action.reads_of a = [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_ttl ]);
  check_bool "writes meta+ttl" true
    (P4ir.Action.writes_of a = [ P4ir.Field.Ipv4_ttl; P4ir.Field.Meta 0 ])

let test_action_concat_drop () =
  let a = P4ir.Action.make "a" [ P4ir.Action.Drop; P4ir.Action.Forward 2 ] in
  let b = P4ir.Action.make "b" [ P4ir.Action.Nop ] in
  let c = P4ir.Action.concat "c" a b in
  check_int "drop truncates" 1 (P4ir.Action.num_primitives c);
  check_bool "still dropping" true (P4ir.Action.is_dropping c);
  let d = P4ir.Action.concat "d" b a in
  check_int "nop then a's prims up to drop" 2 (P4ir.Action.num_primitives d)

(* --- Table --- *)

let simple_table ?(name = "t") () =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.drop_action ]
    ~default_action:"fwd" ()

let test_table_validation () =
  Alcotest.check_raises "bad default"
    (Invalid_argument "Table t: unknown default action nope") (fun () ->
      ignore
        (P4ir.Table.make ~name:"t"
           ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
           ~actions:[ P4ir.Action.nop "a" ]
           ~default_action:"nope" ()));
  let t = simple_table () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table t: entry has 2 patterns for 1 keys") (fun () ->
      ignore
        (P4ir.Table.add_entry t
           (P4ir.Table.entry [ P4ir.Pattern.Exact 1L; P4ir.Pattern.Exact 2L ] "fwd")))

let test_table_lookup_priority () =
  let t =
    P4ir.Table.make ~name:"acl"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "allow"; P4ir.Action.drop_action ]
      ~default_action:"allow"
      ~entries:
        [ P4ir.Table.entry ~priority:1 [ P4ir.Pattern.Ternary (0L, 0L) ] "allow";
          P4ir.Table.entry ~priority:5 [ P4ir.Pattern.Ternary (7L, 0xFFL) ] "drop" ]
      ()
  in
  let read7 _ = 7L in
  let read9 _ = 9L in
  (match P4ir.Table.lookup t read7 with
   | Some e -> check_string "priority wins" "drop" e.action
   | None -> Alcotest.fail "expected hit");
  match P4ir.Table.lookup t read9 with
  | Some e -> check_string "wildcard catches" "allow" e.action
  | None -> Alcotest.fail "expected wildcard hit"

let test_table_m_values () =
  let lpm =
    P4ir.Table.make ~name:"lpm"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
      ~actions:[ P4ir.Action.nop "a" ]
      ~default_action:"a"
      ~entries:
        [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0000L, 16) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0B000000L, 8) ] "a" ]
      ()
  in
  check_int "3 distinct prefix lengths" 3 (P4ir.Table.distinct_lpm_lengths lpm);
  let tern =
    P4ir.Table.make ~name:"tern"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "a" ]
      ~default_action:"a"
      ~entries:
        [ P4ir.Table.entry [ P4ir.Pattern.Ternary (1L, 0xFFL) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Ternary (2L, 0xFFL) ] "a";
          P4ir.Table.entry [ P4ir.Pattern.Ternary (3L, 0xFF00L) ] "a" ]
      ()
  in
  check_int "2 distinct masks" 2 (P4ir.Table.distinct_ternary_masks tern);
  check_bool "effective kind" true
    (P4ir.Match_kind.equal (P4ir.Table.effective_kind tern) P4ir.Match_kind.Ternary)

(* --- Program --- *)

let linear3 () =
  let tabs = List.init 3 (fun i -> simple_table ~name:(Printf.sprintf "t%d" i) ()) in
  P4ir.Program.linear "lin3" tabs

let test_linear_structure () =
  let prog = linear3 () in
  P4ir.Program.validate_exn prog;
  check_int "3 nodes" 3 (P4ir.Program.num_nodes prog);
  let names = List.map (fun (_, (t : P4ir.Table.t)) -> t.name) (P4ir.Program.tables prog) in
  check_bool "topo order" true (names = [ "t0"; "t1"; "t2" ])

let test_validate_catches_cycle () =
  let prog = linear3 () in
  (* Point the last table back at the first. *)
  let ids = P4ir.Program.node_ids prog in
  let first = List.nth ids 0 and last = List.nth ids 2 in
  let prog =
    match P4ir.Program.find_exn prog last with
    | P4ir.Program.Table (t, _) ->
      P4ir.Program.set_node prog last (P4ir.Program.Table (t, P4ir.Program.Uniform (Some first)))
    | _ -> prog
  in
  check_bool "cycle detected" true (Result.is_error (P4ir.Program.validate prog))

let test_validate_catches_dup_names () =
  let tabs = [ simple_table ~name:"same" (); simple_table ~name:"same" () ] in
  let prog = P4ir.Program.linear "dup" tabs in
  check_bool "dup names" true (Result.is_error (P4ir.Program.validate prog))

let test_redirect_and_predecessors () =
  let prog = linear3 () in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let t0 = List.nth ids 0 and t1 = List.nth ids 1 and t2 = List.nth ids 2 in
  check_bool "pred of t1 is t0" true (P4ir.Program.predecessors prog t1 = [ t0 ]);
  (* Skip t1 entirely. *)
  let prog = P4ir.Program.redirect prog ~old_target:t1 ~new_target:(Some t2) in
  let prog = P4ir.Program.remove_node prog t1 in
  P4ir.Program.validate_exn prog;
  check_int "2 nodes left" 2 (P4ir.Program.num_nodes prog)

let branching_program () =
  (* cond -> (t0 -> t2) / (t1 -> t2) -> sink *)
  let prog = P4ir.Program.empty "branchy" in
  let t2 = simple_table ~name:"t2" () in
  let prog, id2 = P4ir.Program.add_node prog (P4ir.Program.Table (t2, P4ir.Program.Uniform None)) in
  let t0 = simple_table ~name:"t0" () in
  let prog, id0 =
    P4ir.Program.add_node prog (P4ir.Program.Table (t0, P4ir.Program.Uniform (Some id2)))
  in
  let t1 = simple_table ~name:"t1" () in
  let prog, id1 =
    P4ir.Program.add_node prog (P4ir.Program.Table (t1, P4ir.Program.Uniform (Some id2)))
  in
  let prog, idc =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq
         ~arg:6L ~on_true:(Some id0) ~on_false:(Some id1))
  in
  (P4ir.Program.with_root prog (Some idc), idc, id0, id1, id2)

let test_paths () =
  let prog, _, _, _, _ = branching_program () in
  P4ir.Program.validate_exn prog;
  let paths = P4ir.Program.enumerate_paths prog in
  check_int "two paths" 2 (List.length paths);
  List.iter
    (fun (p : P4ir.Program.path) -> check_int "3 nodes per path" 3 (List.length p.path_nodes))
    paths

let test_topological_order_branching () =
  let prog, idc, id0, id1, id2 = branching_program () in
  let topo = P4ir.Program.topological_order prog in
  let pos x = Option.get (List.find_index (Int.equal x) topo) in
  check_bool "cond first" true (pos idc < pos id0 && pos idc < pos id1);
  check_bool "join last" true (pos id0 < pos id2 && pos id1 < pos id2)

(* --- Deps --- *)

let table_writing ~name field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_src P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Action.make "w" [ P4ir.Action.Set_field (field, 1L) ] ]
    ~default_action:"w" ()

let table_matching ~name field =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key field P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Action.nop "n" ]
    ~default_action:"n" ()

let test_deps () =
  let w = table_writing ~name:"w" (P4ir.Field.Meta 1) in
  let m = table_matching ~name:"m" (P4ir.Field.Meta 1) in
  let other = table_matching ~name:"o" P4ir.Field.Tcp_dport in
  check_bool "match dep" false (P4ir.Deps.independent w m);
  check_bool "independent" true (P4ir.Deps.independent w other);
  check_bool "deps listed" true (List.mem P4ir.Deps.Match_dep (P4ir.Deps.between w m));
  check_bool "reorderable chain" true (P4ir.Deps.reorderable_chain [ w; other ]);
  check_bool "non-reorderable chain" false (P4ir.Deps.reorderable_chain [ w; m; other ])

let test_conflict_groups () =
  let w = table_writing ~name:"w" (P4ir.Field.Meta 1) in
  let m = table_matching ~name:"m" (P4ir.Field.Meta 1) in
  let o = table_matching ~name:"o" P4ir.Field.Tcp_dport in
  let groups = P4ir.Deps.conflict_free_groups [ w; o; m ] in
  check_int "two groups" 2 (List.length groups)

(* --- JSON --- *)

let test_json_parse () =
  let j = P4ir.Json.of_string_exn {| {"a": [1, 2.5, "x", true, null], "b": {"c": -3}} |} in
  check_int "list len" 5 (List.length (P4ir.Json.to_list (P4ir.Json.member "a" j)));
  check_bool "nested int" true
    (Int64.equal (P4ir.Json.get_int (P4ir.Json.member "c" (P4ir.Json.member "b" j))) (-3L));
  check_bool "bad json is error" true (Result.is_error (P4ir.Json.of_string "{"))

let test_json_string_escapes () =
  let j = P4ir.Json.String "line\n\"quoted\"\ttab" in
  let round = P4ir.Json.of_string_exn (P4ir.Json.to_string j) in
  check_string "escape roundtrip" "line\n\"quoted\"\ttab" (P4ir.Json.get_string round)

let test_serialize_roundtrip_linear () =
  let prog = linear3 () in
  let json = P4ir.Serialize.to_string prog in
  match P4ir.Serialize.of_string json with
  | Error e -> Alcotest.fail e
  | Ok prog' ->
    P4ir.Program.validate_exn prog';
    check_int "same node count" (P4ir.Program.num_nodes prog) (P4ir.Program.num_nodes prog');
    check_string "same json" json (P4ir.Serialize.to_string prog')

let test_serialize_roundtrip_branching () =
  let prog, _, _, _, _ = branching_program () in
  let json = P4ir.Serialize.to_string prog in
  match P4ir.Serialize.of_string json with
  | Error e -> Alcotest.fail e
  | Ok prog' ->
    P4ir.Program.validate_exn prog';
    check_string "same json" json (P4ir.Serialize.to_string prog');
    check_int "two paths survive" 2 (List.length (P4ir.Program.enumerate_paths prog'))

let test_serialize_preserves_roles () =
  let cache_meta =
    { P4ir.Table.cached_tables = [ "t0"; "t1" ];
      capacity = 128;
      insert_limit = 50.;
      auto_insert = true }
  in
  let t =
    P4ir.Table.make ~name:"c" ~role:(P4ir.Table.Cache cache_meta)
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "miss" ]
      ~default_action:"miss" ()
  in
  let prog = P4ir.Program.linear "withcache" [ t ] in
  match P4ir.Serialize.of_string (P4ir.Serialize.to_string prog) with
  | Error e -> Alcotest.fail e
  | Ok prog' -> (
    match P4ir.Program.find_table prog' "c" with
    | Some (_, tab) -> (
      match tab.role with
      | P4ir.Table.Cache m ->
        check_int "capacity" 128 m.capacity;
        check_bool "covered" true (m.cached_tables = [ "t0"; "t1" ])
      | _ -> Alcotest.fail "role lost")
    | None -> Alcotest.fail "table lost")

let test_program_api_errors () =
  let prog = linear3 () in
  Alcotest.check_raises "set_node unknown id"
    (Invalid_argument "Program.set_node: unknown id 99") (fun () ->
      ignore
        (P4ir.Program.set_node prog 99
           (P4ir.Builder.cond ~name:"x" ~field:P4ir.Field.Ipv4_ttl ~op:P4ir.Program.Eq
              ~arg:0L ~on_true:None ~on_false:None)));
  Alcotest.check_raises "find_exn unknown id"
    (Invalid_argument "Program.find_exn: unknown id 99") (fun () ->
      ignore (P4ir.Program.find_exn prog 99));
  Alcotest.check_raises "update_table on branch"
    (Invalid_argument "update_table: node 3 is a branch") (fun () ->
      let prog, id =
        P4ir.Program.add_node prog
          (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_ttl ~op:P4ir.Program.Eq
             ~arg:0L ~on_true:None ~on_false:None)
      in
      ignore (P4ir.Program.update_table prog id Fun.id))

let test_enumerate_paths_limit () =
  (* A ladder of n conditionals has 2^n paths; the limit must trip. *)
  let rec ladder prog next n =
    if n = 0 then (prog, next)
    else
      let t1 = simple_table ~name:(Printf.sprintf "la%d" n) () in
      let t2 = simple_table ~name:(Printf.sprintf "lb%d" n) () in
      let prog, a = P4ir.Program.add_node prog (P4ir.Program.Table (t1, P4ir.Program.Uniform next)) in
      let prog, b = P4ir.Program.add_node prog (P4ir.Program.Table (t2, P4ir.Program.Uniform next)) in
      let prog, c =
        P4ir.Program.add_node prog
          (P4ir.Builder.cond ~name:(Printf.sprintf "c%d" n) ~field:P4ir.Field.Ipv4_ttl
             ~op:P4ir.Program.Eq ~arg:(Int64.of_int n) ~on_true:(Some a) ~on_false:(Some b))
      in
      ladder prog (Some c) (n - 1)
  in
  let prog, root = ladder (P4ir.Program.empty "ladder") None 12 in
  let prog = P4ir.Program.with_root prog root in
  check_int "4096 paths enumerable" 4096 (List.length (P4ir.Program.enumerate_paths prog));
  Alcotest.check_raises "limit trips"
    (Invalid_argument "Program.enumerate_paths: too many paths") (fun () ->
      ignore (P4ir.Program.enumerate_paths ~limit:1000 prog))

let test_eval_cond_operators () =
  let mk op = { P4ir.Program.cond_name = "c"; field = P4ir.Field.Tcp_dport; op;
                arg = 10L; on_true = None; on_false = None } in
  check_bool "eq" true (P4ir.Program.eval_cond (mk P4ir.Program.Eq) 10L);
  check_bool "neq" true (P4ir.Program.eval_cond (mk P4ir.Program.Neq) 11L);
  check_bool "lt" true (P4ir.Program.eval_cond (mk P4ir.Program.Lt) 9L);
  check_bool "gt" false (P4ir.Program.eval_cond (mk P4ir.Program.Gt) 9L);
  check_bool "le boundary" true (P4ir.Program.eval_cond (mk P4ir.Program.Le) 10L);
  check_bool "ge boundary" true (P4ir.Program.eval_cond (mk P4ir.Program.Ge) 10L);
  (* Unsigned comparison: -1 is the largest value. *)
  check_bool "unsigned" true (P4ir.Program.eval_cond (mk P4ir.Program.Gt) Int64.minus_one)

(* --- DOT export --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_dot_program () =
  let prog, _, _, _, _ = branching_program () in
  let dot = P4ir.Dot.program prog in
  check_bool "has digraph" true (contains dot "digraph");
  check_bool "names tables" true (contains dot "t0" && contains dot "t2");
  check_bool "labels branches" true (contains dot "[label=\"T\"]");
  check_bool "has sink" true (contains dot "sink");
  let annotated = P4ir.Dot.program ~reach:(fun _ -> Some 0.25) prog in
  check_bool "reach annotations" true (contains annotated "p=0.25")

let test_dot_dependencies () =
  let w = table_writing ~name:"w" (P4ir.Field.Meta 1) in
  let m = table_matching ~name:"m" (P4ir.Field.Meta 1) in
  let prog = P4ir.Program.linear "d" [ w; m ] in
  let dot = P4ir.Dot.dependencies prog in
  check_bool "edge with kind" true (contains dot "\"w\" -> \"m\"" && contains dot "match")

let () =
  Alcotest.run "p4ir"
    [ ( "value",
        [ Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "prefix_mask" `Quick test_prefix_mask;
          Alcotest.test_case "in_range" `Quick test_in_range ] );
      ( "field",
        [ Alcotest.test_case "roundtrip" `Quick test_field_roundtrip;
          Alcotest.test_case "width" `Quick test_field_width;
          Alcotest.test_case "bad name" `Quick test_field_bad_name ] );
      ( "pattern",
        [ Alcotest.test_case "matches" `Quick test_pattern_matches;
          Alcotest.test_case "specificity" `Quick test_pattern_specificity;
          Alcotest.test_case "wildcards" `Quick test_wildcards ] );
      ( "action",
        [ Alcotest.test_case "read/write sets" `Quick test_action_sets;
          Alcotest.test_case "concat truncates at drop" `Quick test_action_concat_drop ] );
      ( "table",
        [ Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "lookup priority" `Quick test_table_lookup_priority;
          Alcotest.test_case "m values" `Quick test_table_m_values ] );
      ( "program",
        [ Alcotest.test_case "linear structure" `Quick test_linear_structure;
          Alcotest.test_case "cycle detection" `Quick test_validate_catches_cycle;
          Alcotest.test_case "dup names" `Quick test_validate_catches_dup_names;
          Alcotest.test_case "redirect" `Quick test_redirect_and_predecessors;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "topological order" `Quick test_topological_order_branching;
          Alcotest.test_case "api errors" `Quick test_program_api_errors;
          Alcotest.test_case "path limit" `Quick test_enumerate_paths_limit;
          Alcotest.test_case "conditional operators" `Quick test_eval_cond_operators ] );
      ( "deps",
        [ Alcotest.test_case "dependencies" `Quick test_deps;
          Alcotest.test_case "conflict groups" `Quick test_conflict_groups ] );
      ( "json",
        [ Alcotest.test_case "parse" `Quick test_json_parse;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "roundtrip linear" `Quick test_serialize_roundtrip_linear;
          Alcotest.test_case "roundtrip branching" `Quick test_serialize_roundtrip_branching;
          Alcotest.test_case "roles preserved" `Quick test_serialize_preserves_roles ] );
      ( "dot",
        [ Alcotest.test_case "program export" `Quick test_dot_program;
          Alcotest.test_case "dependency export" `Quick test_dot_dependencies ] ) ]
