(* Tests for the SmartNIC simulator: packets, LRU, match engines, the
   run-to-completion executor, and the multicore throughput model. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-6))

(* --- Packet --- *)

let test_packet_fields () =
  let p = Nicsim.Packet.create () in
  Nicsim.Packet.set p P4ir.Field.Ipv4_dst 0x0A000001L;
  check_bool "set/get" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_dst) 0x0A000001L);
  Nicsim.Packet.set p P4ir.Field.Ipv4_ttl 0x1FFL;
  check_bool "width truncation" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_ttl) 0xFFL);
  Nicsim.Packet.set p (P4ir.Field.Meta 20) 7L;
  check_bool "meta grows" true (Int64.equal (Nicsim.Packet.get p (P4ir.Field.Meta 20)) 7L);
  check_bool "unset meta reads zero" true
    (Int64.equal (Nicsim.Packet.get p (P4ir.Field.Meta 5)) 0L)

let test_packet_copy_independent () =
  let p = Nicsim.Packet.of_fields [ (P4ir.Field.Tcp_sport, 80L) ] in
  let q = Nicsim.Packet.copy p in
  Nicsim.Packet.set q P4ir.Field.Tcp_sport 443L;
  check_bool "copy independent" true
    (Int64.equal (Nicsim.Packet.get p P4ir.Field.Tcp_sport) 80L)

(* --- LRU --- *)

let test_lru_eviction_order () =
  let lru = Nicsim.Lru.create ~capacity:2 in
  ignore (Nicsim.Lru.put lru "a" 1);
  ignore (Nicsim.Lru.put lru "b" 2);
  ignore (Nicsim.Lru.find lru "a");  (* refresh a *)
  let evicted = Nicsim.Lru.put lru "c" 3 in
  check_bool "b evicted" true (evicted = Some "b");
  check_bool "a kept" true (Nicsim.Lru.find lru "a" = Some 1);
  check_int "len" 2 (Nicsim.Lru.length lru)

let test_lru_overwrite_no_evict () =
  let lru = Nicsim.Lru.create ~capacity:2 in
  ignore (Nicsim.Lru.put lru "a" 1);
  ignore (Nicsim.Lru.put lru "b" 2);
  check_bool "overwrite" true (Nicsim.Lru.put lru "a" 9 = None);
  check_bool "value updated" true (Nicsim.Lru.find lru "a" = Some 9)

let test_lru_remove_clear () =
  let lru = Nicsim.Lru.create ~capacity:4 in
  ignore (Nicsim.Lru.put lru "a" 1);
  Nicsim.Lru.remove lru "a";
  check_bool "removed" true (Nicsim.Lru.find lru "a" = None);
  ignore (Nicsim.Lru.put lru "b" 2);
  Nicsim.Lru.clear lru;
  check_int "cleared" 0 (Nicsim.Lru.length lru)

(* --- Engines --- *)

let pkt_dst v =
  Nicsim.Packet.of_fields [ (P4ir.Field.Ipv4_dst, v); (P4ir.Field.Tcp_dport, 80L) ]

let test_engine_exact () =
  let tab =
    P4ir.Table.make ~name:"e"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 5L ] "hit" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 5L) in
  check_bool "hit" true (Option.is_some hit);
  check_int "one access" 1 accesses;
  let miss, accesses = Nicsim.Engine.lookup eng (pkt_dst 6L) in
  check_bool "miss" true (miss = None);
  check_int "miss one access" 1 accesses

let lpm_table () =
  P4ir.Table.make ~name:"lpm"
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Lpm ]
    ~actions:[ P4ir.Action.nop "a8"; P4ir.Action.nop "a24"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:
      [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "a8";
        P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0B0C00L, 24) ] "a24" ]
    ()

let test_engine_lpm_longest_first () =
  let eng = Nicsim.Engine.create (lpm_table ()) in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0C0DL) in
  (match hit with
   | Some e -> check_string "longest prefix wins" "a24" e.action
   | None -> Alcotest.fail "expected hit");
  check_int "first probe suffices" 1 accesses;
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0AFFFFFFL) in
  (match hit with
   | Some e -> check_string "short prefix" "a8" e.action
   | None -> Alcotest.fail "expected /8 hit");
  check_int "two probes" 2 accesses;
  let miss, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0B000000L) in
  check_bool "miss" true (miss = None);
  check_int "all groups probed on miss" 2 accesses

let test_engine_ternary_priority () =
  let tab =
    P4ir.Table.make ~name:"tern"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Ternary ]
      ~actions:[ P4ir.Action.nop "low"; P4ir.Action.nop "high" ]
      ~default_action:"low"
      ~entries:
        [ P4ir.Table.entry ~priority:1 [ P4ir.Pattern.Ternary (0x0A000000L, 0xFF000000L) ] "low";
          P4ir.Table.entry ~priority:9 [ P4ir.Pattern.Ternary (0x0A0B0000L, 0xFFFF0000L) ] "high" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  let hit, accesses = Nicsim.Engine.lookup eng (pkt_dst 0x0A0B0000L) in
  (match hit with
   | Some e -> check_string "priority wins" "high" e.action
   | None -> Alcotest.fail "expected hit");
  check_int "every mask group probed" 2 accesses

let test_engine_range_linear () =
  let tab =
    P4ir.Table.make ~name:"rng"
      ~keys:[ P4ir.Table.key P4ir.Field.Tcp_dport P4ir.Match_kind.Range ]
      ~actions:[ P4ir.Action.nop "web"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Range (80L, 443L) ] "web" ]
      ()
  in
  let eng = Nicsim.Engine.create tab in
  match Nicsim.Engine.lookup eng (pkt_dst 1L) with
  | Some e, _ -> check_string "range hit" "web" e.action
  | None, _ -> Alcotest.fail "expected range hit"

let test_engine_insert_delete () =
  let tab =
    P4ir.Table.make ~name:"e"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def" ()
  in
  let eng = Nicsim.Engine.create tab in
  Nicsim.Engine.insert eng (P4ir.Table.entry [ P4ir.Pattern.Exact 7L ] "hit");
  check_int "one entry" 1 (Nicsim.Engine.num_entries eng);
  check_int "update counted" 1 (Nicsim.Engine.update_count eng);
  check_bool "hit after insert" true
    (fst (Nicsim.Engine.lookup eng (pkt_dst 7L)) <> None);
  check_bool "delete" true (Nicsim.Engine.delete eng ~patterns:[ P4ir.Pattern.Exact 7L ]);
  check_int "empty" 0 (Nicsim.Engine.num_entries eng);
  check_int "both updates counted" 2 (Nicsim.Engine.take_update_count eng);
  check_int "counter reset" 0 (Nicsim.Engine.update_count eng)

let cache_table ?(capacity = 2) ?(insert_limit = 0.) () =
  P4ir.Table.make ~name:"cache"
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Action.nop "t:a"; P4ir.Action.nop "miss" ]
    ~default_action:"miss"
    ~role:
      (P4ir.Table.Cache
         { P4ir.Table.cached_tables = [ "t" ]; capacity; insert_limit; auto_insert = true })
    ()

let test_cache_fill_lru () =
  let eng = Nicsim.Engine.create (cache_table ()) in
  let fill v = Nicsim.Engine.cache_fill eng ~now:0. (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "t:a") in
  check_bool "first" true (fill 1L = `Inserted);
  check_bool "second" true (fill 2L = `Inserted);
  check_bool "third evicts" true (fill 3L = `Full_replace);
  check_int "capacity respected" 2 (Nicsim.Engine.num_entries eng)

let test_cache_fill_rate_limit () =
  let eng = Nicsim.Engine.create (cache_table ~capacity:100 ~insert_limit:2. ()) in
  let fill now v =
    Nicsim.Engine.cache_fill eng ~now (P4ir.Table.entry [ P4ir.Pattern.Exact v ] "t:a")
  in
  (* The bucket starts with one second's burst (2 tokens). *)
  check_bool "burst token 1" true (fill 0.0 1L = `Inserted);
  check_bool "burst token 2" true (fill 0.0 2L = `Inserted);
  check_bool "burst exhausted" true (fill 0.0 3L = `Rate_limited);
  check_bool "refills with time" true (fill 1.0 4L = `Inserted);
  check_bool "capped at burst" true (fill 1.0 5L = `Inserted);
  check_bool "exhausted again" true (fill 1.0 6L = `Rate_limited)

(* --- Exec --- *)

let acl_with_drop ~name value =
  let acl = P4ir.Builder.acl_table ~name ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ] () in
  P4ir.Table.add_entry acl (P4ir.Table.entry [ P4ir.Pattern.Exact value ] "deny")

let test_exec_drop_halts () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let after = P4ir.Builder.exact_chain ~prefix:"t" ~n:1 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) () in
  let prog = P4ir.Program.linear "p" (acl :: after) in
  let target = Costmodel.Target.bluefield2 in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config target) prog in
  let dropped = pkt_dst 9L in
  let lat_dropped = Nicsim.Exec.run_packet ex ~now:0. dropped in
  check_bool "dropped" true (Nicsim.Packet.is_dropped dropped);
  let passed = pkt_dst 8L in
  let lat_passed = Nicsim.Exec.run_packet ex ~now:0. passed in
  check_bool "not dropped" false (Nicsim.Packet.is_dropped passed);
  check_bool "early drop is cheaper" true (lat_dropped < lat_passed);
  check_int "drops counted" 1 (Nicsim.Exec.drops_seen ex)

let test_exec_actions_apply () =
  let tab =
    P4ir.Table.make ~name:"rewrite"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:
        [ P4ir.Action.make "rw"
            [ P4ir.Action.Set_field (P4ir.Field.Tcp_dport, 100L);
              P4ir.Action.Dec_ttl;
              P4ir.Action.Forward 3 ];
          P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "rw" ]
      ()
  in
  let prog = P4ir.Program.linear "p" [ tab ] in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  let p = pkt_dst 1L in
  Nicsim.Packet.set p P4ir.Field.Ipv4_ttl 64L;
  ignore (Nicsim.Exec.run_packet ex ~now:0. p);
  check_bool "dport rewritten" true (Int64.equal (Nicsim.Packet.get p P4ir.Field.Tcp_dport) 100L);
  check_bool "ttl decremented" true (Int64.equal (Nicsim.Packet.get p P4ir.Field.Ipv4_ttl) 63L);
  check_bool "egress set" true (Nicsim.Packet.egress_port p = Some 3)

let test_exec_counters () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 9L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 2L));
  let c = Nicsim.Exec.counters ex in
  check_bool "deny counted" true (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"deny") 1L);
  check_bool "allow counted" true
    (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"allow") 2L)

let test_exec_sampling () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let cfg =
    { (Nicsim.Exec.default_config Costmodel.Target.bluefield2) with
      Nicsim.Exec.sample_rate = 4 }
  in
  let ex = Nicsim.Exec.create cfg prog in
  for _ = 1 to 16 do
    ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L))
  done;
  let c = Nicsim.Exec.counters ex in
  check_bool "1 in 4 sampled" true
    (Int64.equal (Profile.Counter.get c ~owner:"acl" ~label:"allow") 4L)

let test_exec_migration_cost () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:4 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let prog = P4ir.Program.linear "p" tabs in
  let target = Costmodel.Target.bluefield2 in
  let all_asic = Nicsim.Exec.default_config target in
  let ids = List.map fst (P4ir.Program.tables prog) in
  (* Alternate ASIC/CPU: t0=Asic, t1=Cpu, t2=Asic, t3=Cpu gives crossings
     t0-t1, t1-t2, t2-t3, t3-sink = 4 migrations. *)
  let placement id =
    match List.find_index (Int.equal id) ids with
    | Some i when i mod 2 = 1 -> Costmodel.Cost.Cpu
    | _ -> Costmodel.Cost.Asic
  in
  let hetero = { all_asic with Nicsim.Exec.placement } in
  let ex_flat = Nicsim.Exec.create all_asic prog in
  let ex_het = Nicsim.Exec.create hetero prog in
  let base = Nicsim.Exec.run_packet ex_flat ~now:0. (pkt_dst 1L) in
  let lifted = Nicsim.Exec.run_packet ex_het ~now:0. (pkt_dst 1L) in
  check_bool "migrations charged" true
    (lifted -. base >= (4. *. target.Costmodel.Target.migration_latency) -. 1e-6)

let test_exec_switch_case_routing () =
  let t_next = P4ir.Builder.exact_chain ~prefix:"after" ~n:1 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let switch_tab =
    P4ir.Table.make ~name:"sw"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "go"; P4ir.Action.nop "skip" ]
      ~default_action:"skip"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "go" ]
      ()
  in
  let prog = P4ir.Program.empty "p" in
  let prog, after_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table (List.hd t_next, P4ir.Program.Uniform None))
  in
  let prog, sw_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table
         (switch_tab, P4ir.Program.Per_action [ ("go", Some after_id); ("skip", None) ]))
  in
  let prog = P4ir.Program.with_root prog (Some sw_id) in
  P4ir.Program.validate_exn prog;
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog in
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 1L));
  ignore (Nicsim.Exec.run_packet ex ~now:0. (pkt_dst 2L));
  let c = Nicsim.Exec.counters ex in
  check_bool "only the 'go' packet reaches after_0" true
    (Int64.equal (Profile.Counter.owner_total c "after_0") 1L)

(* --- Sim --- *)

let test_sim_window_throughput () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:10 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) () in
  let prog = P4ir.Program.linear "p" tabs in
  let target = Costmodel.Target.bluefield2 in
  let sim = Nicsim.Sim.create target prog in
  let rng = Stdx.Prng.create 42L in
  let flows = Traffic.Workload.random_flows rng ~n:100 ~fields:[ P4ir.Field.Ipv4_dst ] in
  let source = Traffic.Workload.of_flows rng flows in
  let stats = Nicsim.Sim.run_window sim ~duration:1.0 ~packets:500 ~source in
  check_int "sampled" 500 stats.Nicsim.Sim.sampled_packets;
  check_bool "throughput positive" true (stats.Nicsim.Sim.throughput_gbps > 0.);
  check_bool "capped at line rate" true
    (stats.Nicsim.Sim.throughput_gbps <= target.Costmodel.Target.line_rate_gbps +. 1e-9);
  check_float "clock advanced" 1.0 (Nicsim.Sim.now sim)

let test_sim_reconfigure_preserves_entries () =
  let tab =
    P4ir.Table.make ~name:"keep"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "hit"; P4ir.Action.nop "def" ]
      ~default_action:"def" ()
  in
  let prog = P4ir.Program.linear "p" [ tab ] in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  Nicsim.Sim.insert sim ~table:"keep" (P4ir.Table.entry [ P4ir.Pattern.Exact 7L ] "hit");
  let prog2 =
    P4ir.Program.linear "p2"
      (tab :: P4ir.Builder.exact_chain ~prefix:"new" ~n:1 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) ())
  in
  Nicsim.Sim.reconfigure ~downtime:0.5 sim prog2;
  check_float "downtime advanced clock" 0.5 (Nicsim.Sim.now sim);
  let eng = Nicsim.Exec.engine_exn (Nicsim.Sim.exec sim) "keep" in
  check_int "entries preserved" 1 (Nicsim.Engine.num_entries eng)

let test_sim_profile_extraction () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let prog = P4ir.Program.linear "p" [ acl ] in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  let rng = Stdx.Prng.create 1L in
  let base = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.5 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  ignore (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:4000 ~source);
  let prof = Nicsim.Sim.current_profile sim in
  let drop =
    Profile.drop_prob prof
      (match P4ir.Program.find_table prog "acl" with Some (_, t) -> t | None -> assert false)
  in
  check_bool "observed drop rate near 0.5" true (Float.abs (drop -. 0.5) < 0.05)

let test_sim_p99_and_drop_fraction () =
  let acl = acl_with_drop ~name:"acl" 9L in
  let tail = P4ir.Builder.exact_chain ~prefix:"t" ~n:8 ~key_of:(fun _ -> P4ir.Field.Tcp_dport) () in
  let prog = P4ir.Program.linear "p" (acl :: tail) in
  let sim = Nicsim.Sim.create Costmodel.Target.bluefield2 prog in
  let rng = Stdx.Prng.create 8L in
  let base = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.25 ~field:P4ir.Field.Ipv4_dst ~value:9L base
  in
  let stats = Nicsim.Sim.run_window sim ~duration:1.0 ~packets:2000 ~source in
  check_bool "p99 >= avg" true (stats.Nicsim.Sim.p99_latency >= stats.Nicsim.Sim.avg_latency);
  check_bool "drop fraction near 0.25" true
    (Float.abs (stats.Nicsim.Sim.drop_fraction -. 0.25) < 0.04)

let test_sim_instrumentation_overhead () =
  let prog =
    P4ir.Program.linear "p"
      (P4ir.Builder.exact_chain ~prefix:"t" ~n:20 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) ())
  in
  let target = Costmodel.Target.agilio_cx in
  let run instrumented =
    let cfg = { (Nicsim.Exec.default_config target) with Nicsim.Exec.instrumented } in
    let sim = Nicsim.Sim.create ~config:cfg target prog in
    let source = Traffic.Workload.constant [ (P4ir.Field.Ipv4_dst, 1L) ] in
    (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:300 ~source).Nicsim.Sim.avg_latency
  in
  let plain = run false and counted = run true in
  (* 20 counter bumps at the Agilio counter cost. *)
  Alcotest.(check (float 1e-6)) "counter cost exact"
    (20. *. target.Costmodel.Target.counter_update_cost)
    (counted -. plain)

let test_cache_capacity_respected_in_program () =
  let tabs = P4ir.Builder.exact_chain ~prefix:"t" ~n:2 ~key_of:(fun i -> [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst |].(i)) () in
  let prog = P4ir.Program.linear "p" tabs in
  let p = List.hd (Pipeleon.Pipelet.form prog) in
  let cache = Pipeleon.Cache.build ~capacity:8 ~insert_limit:1e9 ~name:"c" tabs in
  let prog' =
    Pipeleon.Transform.apply prog p [ Pipeleon.Transform.Cached { cache; originals = tabs } ]
  in
  let ex = Nicsim.Exec.create (Nicsim.Exec.default_config Costmodel.Target.bluefield2) prog' in
  for i = 1 to 100 do
    let pkt =
      Nicsim.Packet.of_fields
        [ (P4ir.Field.Ipv4_src, Int64.of_int i); (P4ir.Field.Ipv4_dst, Int64.of_int i) ]
    in
    ignore (Nicsim.Exec.run_packet ex ~now:(float_of_int i) pkt)
  done;
  check_int "LRU bound holds under fills" 8
    (Nicsim.Engine.num_entries (Nicsim.Exec.engine_exn ex "c"))

let test_navigation_migration_execution () =
  (* Materialized hetero program executes through nav/migration tables:
     next_tab_id gets written and the packet still reaches the end. *)
  let tabs =
    P4ir.Builder.exact_chain ~prefix:"t" ~n:2 ~key_of:(fun _ -> P4ir.Field.Ipv4_dst) ()
  in
  let prog = P4ir.Program.linear "p" tabs in
  let ids = List.map fst (P4ir.Program.tables prog) in
  let placement id = if id = List.nth ids 1 then Costmodel.Cost.Cpu else Costmodel.Cost.Asic in
  let prog', placement' = Pipeleon.Hetero.materialize prog ~placement in
  let cfg = { (Nicsim.Exec.default_config Costmodel.Target.emulated_nic) with Nicsim.Exec.placement = placement' } in
  let ex = Nicsim.Exec.create cfg prog' in
  let pkt = pkt_dst 1L in
  ignore (Nicsim.Exec.run_packet ex ~now:0. pkt);
  check_bool "next_tab_id piggybacked" true
    (Int64.compare (Nicsim.Packet.get pkt P4ir.Field.Next_tab_id) 0L > 0);
  let c = Nicsim.Exec.counters ex in
  check_bool "migration table executed" true
    (List.exists
       (fun ((k : Profile.Counter.key), _) ->
         String.length k.owner >= 5 && String.sub k.owner 0 5 = "__mig")
       (Profile.Counter.dump c))

let () =
  Alcotest.run "nicsim"
    [ ( "packet",
        [ Alcotest.test_case "fields" `Quick test_packet_fields;
          Alcotest.test_case "copy" `Quick test_packet_copy_independent ] );
      ( "lru",
        [ Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "overwrite" `Quick test_lru_overwrite_no_evict;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear ] );
      ( "engine",
        [ Alcotest.test_case "exact" `Quick test_engine_exact;
          Alcotest.test_case "lpm longest first" `Quick test_engine_lpm_longest_first;
          Alcotest.test_case "ternary priority" `Quick test_engine_ternary_priority;
          Alcotest.test_case "range linear" `Quick test_engine_range_linear;
          Alcotest.test_case "insert/delete" `Quick test_engine_insert_delete;
          Alcotest.test_case "cache fill + lru" `Quick test_cache_fill_lru;
          Alcotest.test_case "cache rate limit" `Quick test_cache_fill_rate_limit ] );
      ( "exec",
        [ Alcotest.test_case "drop halts" `Quick test_exec_drop_halts;
          Alcotest.test_case "actions apply" `Quick test_exec_actions_apply;
          Alcotest.test_case "counters" `Quick test_exec_counters;
          Alcotest.test_case "sampling" `Quick test_exec_sampling;
          Alcotest.test_case "migration cost" `Quick test_exec_migration_cost;
          Alcotest.test_case "switch-case routing" `Quick test_exec_switch_case_routing ] );
      ( "sim",
        [ Alcotest.test_case "window throughput" `Quick test_sim_window_throughput;
          Alcotest.test_case "reconfigure" `Quick test_sim_reconfigure_preserves_entries;
          Alcotest.test_case "profile extraction" `Quick test_sim_profile_extraction;
          Alcotest.test_case "p99 + drop fraction" `Quick test_sim_p99_and_drop_fraction;
          Alcotest.test_case "instrumentation overhead" `Quick test_sim_instrumentation_overhead;
          Alcotest.test_case "cache capacity in program" `Quick
            test_cache_capacity_respected_in_program;
          Alcotest.test_case "nav/migration execution" `Quick
            test_navigation_migration_execution ] ) ]
