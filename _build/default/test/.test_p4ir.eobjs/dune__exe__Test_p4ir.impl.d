test/test_p4ir.ml: Alcotest Fun Int Int64 List Option P4ir Printf Result String
