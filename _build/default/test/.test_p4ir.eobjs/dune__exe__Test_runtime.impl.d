test/test_runtime.ml: Alcotest Costmodel Float Int64 List Nicsim Option P4ir Pipeleon Printf Profile Runtime Stdx String Traffic
