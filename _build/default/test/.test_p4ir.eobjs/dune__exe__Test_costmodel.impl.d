test/test_costmodel.ml: Alcotest Costmodel Float Int64 List Option P4ir Printf Profile
