test/test_profile.ml: Alcotest Int64 List P4ir Pipeleon Profile String
