test/test_pipelet.ml: Alcotest Costmodel Experiments List P4ir Pipeleon Printf Profile Stdx
