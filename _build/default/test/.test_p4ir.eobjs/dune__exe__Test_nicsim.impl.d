test/test_nicsim.ml: Alcotest Array Costmodel Float Int Int64 List Nicsim Option P4ir Pipeleon Profile Stdx String Traffic
