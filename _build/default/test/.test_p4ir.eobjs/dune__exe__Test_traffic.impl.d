test/test_traffic.ml: Alcotest Array Float Hashtbl Int64 List Nicsim P4ir Stdx Traffic
