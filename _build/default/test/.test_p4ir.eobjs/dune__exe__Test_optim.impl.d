test/test_optim.ml: Alcotest Array Costmodel Float Int Int64 Knapsack List Nicsim Option P4ir Pipeleon Printf Profile Stdx String Traffic
