test/test_p4lite.mli:
