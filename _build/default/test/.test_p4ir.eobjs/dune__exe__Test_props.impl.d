test/test_props.ml: Alcotest Array Costmodel Experiments Float Fun Hashtbl Int64 List Nicsim P4ir P4lite Pipeleon QCheck2 QCheck_alcotest Stdx String
