test/test_p4lite.ml: Alcotest Array Costmodel Int64 List Nicsim Option P4ir P4lite Pipeleon Stdx String
