test/test_pipelet.mli:
