(* Tests for pipelet formation, hot-pipelet detection, pipelet groups,
   and the instrumentation analysis. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let target = Costmodel.Target.bluefield2

let exact_table name =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Builder.forward_action "act"; P4ir.Action.nop "def" ]
    ~default_action:"def" ()

let names prog (p : Pipeleon.Pipelet.t) =
  List.map (fun (t : P4ir.Table.t) -> t.name) (Pipeleon.Pipelet.tables prog p)

(* --- formation --- *)

let test_linear_one_pipelet () =
  let prog = P4ir.Program.linear "p" (List.init 4 (fun i -> exact_table (Printf.sprintf "t%d" i))) in
  match Pipeleon.Pipelet.form prog with
  | [ p ] ->
    check_int "all tables" 4 (Pipeleon.Pipelet.length p);
    check_bool "in order" true (names prog p = [ "t0"; "t1"; "t2"; "t3" ]);
    check_bool "exits to sink" true (p.exit = None)
  | ps -> Alcotest.failf "expected 1 pipelet, got %d" (List.length ps)

let test_long_pipelet_split () =
  let prog = P4ir.Program.linear "p" (List.init 10 (fun i -> exact_table (Printf.sprintf "t%d" i))) in
  let ps = Pipeleon.Pipelet.form ~max_len:4 prog in
  check_int "split into 3" 3 (List.length ps);
  check_bool "lengths 4,4,2" true (List.map Pipeleon.Pipelet.length ps = [ 4; 4; 2 ]);
  (* Consecutive chunks chain: each chunk's exit is the next chunk's entry. *)
  let rec chained = function
    | (a : Pipeleon.Pipelet.t) :: (b : Pipeleon.Pipelet.t) :: rest ->
      a.exit = Some b.entry && chained (b :: rest)
    | _ -> true
  in
  check_bool "chunks chain in order" true (chained ps);
  (* Order preserved across chunks. *)
  let all = List.concat_map (names prog) ps in
  check_bool "global order" true (all = List.init 10 (fun i -> Printf.sprintf "t%d" i))

let test_split_at_conditionals () =
  let prog = P4ir.Program.empty "p" in
  let prog, after = P4ir.Builder.chain_into prog [ exact_table "after0"; exact_table "after1" ] ~exit:None in
  let prog, arm1 = P4ir.Builder.chain_into prog [ exact_table "a0" ] ~exit:(Some after) in
  let prog, arm2 = P4ir.Builder.chain_into prog [ exact_table "b0" ] ~exit:(Some after) in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some arm1) ~on_false:(Some arm2))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  P4ir.Program.validate_exn prog;
  let ps = Pipeleon.Pipelet.form prog in
  check_int "three pipelets" 3 (List.length ps);
  (* The join point (after0) starts its own pipelet even though each arm
     flows into it with Uniform next. *)
  check_bool "join starts fresh pipelet" true
    (List.exists (fun p -> names prog p = [ "after0"; "after1" ]) ps)

let test_switch_case_singleton () =
  let sw =
    P4ir.Table.make ~name:"sw"
      ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
      ~actions:[ P4ir.Action.nop "x"; P4ir.Action.nop "y" ]
      ~default_action:"y" ()
  in
  let prog = P4ir.Program.empty "p" in
  let prog, t1 = P4ir.Builder.chain_into prog [ exact_table "t1" ] ~exit:None in
  let prog, t2 = P4ir.Builder.chain_into prog [ exact_table "t2" ] ~exit:None in
  let prog, sw_id =
    P4ir.Program.add_node prog
      (P4ir.Program.Table (sw, P4ir.Program.Per_action [ ("x", Some t1); ("y", Some t2) ]))
  in
  let prog = P4ir.Program.with_root prog (Some sw_id) in
  P4ir.Program.validate_exn prog;
  let ps = Pipeleon.Pipelet.form prog in
  check_int "three pipelets" 3 (List.length ps);
  let sw_p = List.find (fun (p : Pipeleon.Pipelet.t) -> p.entry = sw_id) ps in
  check_bool "switch-case singleton" true sw_p.is_switch_case;
  check_int "length 1" 1 (Pipeleon.Pipelet.length sw_p)

let test_every_table_in_exactly_one_pipelet () =
  let rng = Stdx.Prng.create 44L in
  for _ = 1 to 10 do
    let prog = Experiments.Synth.program rng in
    let ps = Pipeleon.Pipelet.form prog in
    let covered = List.concat_map (fun (p : Pipeleon.Pipelet.t) -> p.table_ids) ps in
    let table_ids = List.map fst (P4ir.Program.tables prog) in
    check_bool "coverage" true
      (List.sort compare covered = List.sort compare table_ids)
  done

(* --- hotspots --- *)

let test_hotspot_ranking () =
  (* Two pipelets behind a branch; the heavy-traffic one must rank first. *)
  let prog = P4ir.Program.empty "p" in
  let prog, a = P4ir.Builder.chain_into prog [ exact_table "hot0"; exact_table "hot1" ] ~exit:None in
  let prog, b = P4ir.Builder.chain_into prog [ exact_table "cold0"; exact_table "cold1" ] ~exit:None in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some a) ~on_false:(Some b))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  let prof = Profile.set_cond "c" { Profile.true_prob = 0.9 } (Profile.uniform prog) in
  let hots = Pipeleon.Hotspot.rank target prof prog (Pipeleon.Pipelet.form prog) in
  (match hots with
   | first :: second :: _ ->
     check_bool "hot first" true (names prog first.pipelet = [ "hot0"; "hot1" ]);
     check_float "reach prob" 0.9 first.reach_prob;
     check_bool "cost ordering" true (first.weighted_cost > second.weighted_cost)
   | _ -> Alcotest.fail "expected two pipelets");
  let top = Pipeleon.Hotspot.top_k ~fraction:0.5 hots in
  check_int "top 50% of 2" 1 (List.length top);
  Alcotest.check_raises "bad fraction" (Invalid_argument "Hotspot.top_k: fraction in (0,1]")
    (fun () -> ignore (Pipeleon.Hotspot.top_k ~fraction:0. hots))

(* --- groups --- *)

let test_group_detection_shapes () =
  (* A skip-style branch (true arm runs A then B, false arm jumps straight
     to B) is not a diamond: the arms' exits differ and B has two
     predecessors, so no group must form. *)
  let prog = P4ir.Program.empty "p" in
  let prog, b = P4ir.Builder.chain_into prog [ exact_table "b" ] ~exit:None in
  let prog, a = P4ir.Builder.chain_into prog [ exact_table "a" ] ~exit:(Some b) in
  let prog, c =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some a) ~on_false:(Some b))
  in
  let prog = P4ir.Program.with_root prog (Some c) in
  P4ir.Program.validate_exn prog;
  let groups = Pipeleon.Group.detect prog ~candidates:(Pipeleon.Pipelet.form prog) in
  check_int "skip-branch is not a group" 0 (List.length groups);
  (* A true diamond with a common sink exit IS a group. *)
  let prog2 = P4ir.Program.empty "p2" in
  let prog2, a2 = P4ir.Builder.chain_into prog2 [ exact_table "a2" ] ~exit:None in
  let prog2, b2 = P4ir.Builder.chain_into prog2 [ exact_table "b2" ] ~exit:None in
  let prog2, c2 =
    P4ir.Program.add_node prog2
      (P4ir.Builder.cond ~name:"c2" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some a2) ~on_false:(Some b2))
  in
  let prog2 = P4ir.Program.with_root prog2 (Some c2) in
  let groups2 = Pipeleon.Group.detect prog2 ~candidates:(Pipeleon.Pipelet.form prog2) in
  check_int "diamond groups" 1 (List.length groups2)

(* --- instrumentation --- *)

let test_instrument_analysis () =
  let prog = P4ir.Program.linear "p" (List.init 3 (fun i -> exact_table (Printf.sprintf "t%d" i))) in
  let sites = Pipeleon.Instrument.counter_sites prog in
  (* 3 tables x 2 actions = 6 counters. *)
  check_int "sites" 6 (List.length sites);
  let prof = Profile.uniform prog in
  check_float "expected updates = nodes visited" 3.
    (Pipeleon.Instrument.expected_updates_per_packet prof prog);
  check_int "max path updates" 3 (Pipeleon.Instrument.max_updates_per_packet prog);
  let ovh = Pipeleon.Instrument.overhead_latency target prof prog ~sample_rate:1 in
  check_float "overhead scales with sampling" (ovh /. 1024.)
    (Pipeleon.Instrument.overhead_latency target prof prog ~sample_rate:1024)

let () =
  Alcotest.run "pipelet"
    [ ( "formation",
        [ Alcotest.test_case "linear" `Quick test_linear_one_pipelet;
          Alcotest.test_case "long split" `Quick test_long_pipelet_split;
          Alcotest.test_case "split at conditionals" `Quick test_split_at_conditionals;
          Alcotest.test_case "switch-case singleton" `Quick test_switch_case_singleton;
          Alcotest.test_case "full coverage" `Quick test_every_table_in_exactly_one_pipelet ] );
      ("hotspots", [ Alcotest.test_case "ranking" `Quick test_hotspot_ranking ]);
      ("groups", [ Alcotest.test_case "detection shapes" `Quick test_group_detection_shapes ]);
      ("instrumentation", [ Alcotest.test_case "analysis" `Quick test_instrument_analysis ]) ]
