(* Tests for the traffic library and the stdx utilities it builds on. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Stdx.Prng.create 42L and b = Stdx.Prng.create 42L in
  let seq rng = List.init 10 (fun _ -> Stdx.Prng.next64 rng) in
  check_bool "same seed, same stream" true (seq a = seq b);
  let c = Stdx.Prng.create 43L in
  check_bool "different seed differs" false (seq (Stdx.Prng.create 42L) = seq c)

let test_prng_ranges () =
  let rng = Stdx.Prng.create 7L in
  for _ = 1 to 1000 do
    let f = Stdx.Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range";
    let i = Stdx.Prng.int rng 10 in
    if i < 0 || i >= 10 then Alcotest.fail "int out of range"
  done

let test_prng_weighted () =
  let rng = Stdx.Prng.create 11L in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Stdx.Prng.weighted_index rng [| 1.; 2.; 7. |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "heaviest wins" true (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  Alcotest.check_raises "zero weights" (Invalid_argument "Prng.weighted_index: zero total weight")
    (fun () -> ignore (Stdx.Prng.weighted_index rng [| 0.; 0. |]))

(* --- Stats --- *)

let test_stats_basics () =
  check_float "mean" 2.5 (Stdx.Stats.mean [ 1.; 2.; 3.; 4. ]);
  check_float "median" 2.5 (Stdx.Stats.median [ 1.; 2.; 3.; 4. ]);
  check_float "p0" 1. (Stdx.Stats.percentile 0. [ 3.; 1.; 2. ]);
  check_float "p100" 3. (Stdx.Stats.percentile 100. [ 3.; 1.; 2. ]);
  check_float "p50 interpolated" 2. (Stdx.Stats.percentile 50. [ 3.; 1.; 2. ])

let test_stats_regression () =
  let points = List.map (fun x -> (x, (3. *. x) +. 2.)) [ 1.; 2.; 5.; 9. ] in
  let slope, intercept = Stdx.Stats.linear_regression points in
  check_float "slope" 3. slope;
  check_float "intercept" 2. intercept;
  check_float "r2 perfect" 1. (Stdx.Stats.r_squared points ~slope ~intercept)

let test_stats_entropy () =
  check_float "uniform 4 = 2 bits" 2. (Stdx.Stats.entropy [ 0.25; 0.25; 0.25; 0.25 ]);
  check_float "point mass = 0" 0. (Stdx.Stats.entropy [ 1.; 0.; 0. ]);
  (* Normalization happens internally. *)
  check_float "unnormalized uniform" 1. (Stdx.Stats.entropy [ 10.; 10. ])

(* --- Zipf --- *)

let test_zipf_skew () =
  let z = Traffic.Zipf.create ~n:100 ~s:1.2 in
  let rng = Stdx.Prng.create 3L in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let i = Traffic.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  check_bool "rank 0 most popular" true (counts.(0) > counts.(10));
  check_bool "long tail present" true (Array.exists (fun c -> c > 0) (Array.sub counts 50 50));
  let total = Array.fold_left ( +. ) 0. (Array.init 100 (Traffic.Zipf.probability z)) in
  check_float "probabilities sum to 1" 1.0 total

let test_zipf_uniform () =
  let z = Traffic.Zipf.create ~n:10 ~s:0. in
  check_float "uniform mass" 0.1 (Traffic.Zipf.probability z 5)

(* --- Workload --- *)

let flow_fields = [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst ]

let test_random_flows_distinct () =
  let rng = Stdx.Prng.create 5L in
  let flows = Traffic.Workload.random_flows rng ~n:200 ~fields:flow_fields in
  check_int "count" 200 (Array.length flows);
  let keys =
    Array.to_list flows
    |> List.map (fun f -> List.map snd f)
    |> List.sort_uniq compare
  in
  check_bool "flows mostly distinct" true (List.length keys > 190)

let test_of_flows_projects_population () =
  let rng = Stdx.Prng.create 5L in
  let flows = Traffic.Workload.random_flows rng ~n:4 ~fields:flow_fields in
  let source = Traffic.Workload.of_flows rng flows in
  for _ = 1 to 50 do
    let pkt = source () in
    let v = Nicsim.Packet.get pkt P4ir.Field.Ipv4_src in
    let known =
      Array.exists
        (fun f -> match List.assoc_opt P4ir.Field.Ipv4_src f with Some x -> Int64.equal x v | None -> false)
        flows
    in
    if not known then Alcotest.fail "packet from unknown flow"
  done

let test_mark_fraction_rate () =
  let rng = Stdx.Prng.create 5L in
  let base = Traffic.Workload.constant [ (P4ir.Field.Tcp_dport, 80L) ] in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.3 ~field:P4ir.Field.Tcp_dport ~value:666L base
  in
  let marked = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Int64.equal (Nicsim.Packet.get (source ()) P4ir.Field.Tcp_dport) 666L then incr marked
  done;
  let rate = float_of_int !marked /. float_of_int n in
  check_bool "within 3% of target" true (Float.abs (rate -. 0.3) < 0.03)

let test_mixture_weights () =
  let rng = Stdx.Prng.create 9L in
  let a = Traffic.Workload.constant [ (P4ir.Field.Tcp_dport, 1L) ] in
  let b = Traffic.Workload.constant [ (P4ir.Field.Tcp_dport, 2L) ] in
  let source = Traffic.Workload.mixture rng [ (0.8, a); (0.2, b) ] in
  let ones = ref 0 in
  for _ = 1 to 5000 do
    if Int64.equal (Nicsim.Packet.get (source ()) P4ir.Field.Tcp_dport) 1L then incr ones
  done;
  let share = float_of_int !ones /. 5000. in
  check_bool "mixture ratio" true (Float.abs (share -. 0.8) < 0.05)

let test_zipf_source_locality () =
  let rng = Stdx.Prng.create 13L in
  let flows = Traffic.Workload.random_flows rng ~n:1000 ~fields:flow_fields in
  let source = Traffic.Workload.of_flows ~zipf_s:1.3 rng flows in
  (* Count distinct flow keys in a short run: strong locality means far
     fewer distinct keys than packets. *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    let pkt = source () in
    Hashtbl.replace seen (Nicsim.Packet.key_string pkt flow_fields) ()
  done;
  check_bool "zipfian concentration" true (Hashtbl.length seen < 500)

(* --- Trace --- *)

let test_trace_record_replay () =
  let rng = Stdx.Prng.create 21L in
  let flows = Traffic.Workload.random_flows rng ~n:16 ~fields:flow_fields in
  let source = Traffic.Workload.of_flows rng flows in
  let trace = Traffic.Trace.record ~fields:flow_fields ~n:50 source in
  check_int "length" 50 (Traffic.Trace.length trace);
  (* Replaying twice yields identical packet sequences. *)
  let replay1 = Traffic.Trace.replay trace in
  let replay2 = Traffic.Trace.replay trace in
  for _ = 1 to 120 do
    (* 120 > 50: looping replay *)
    let a = replay1 () and b = replay2 () in
    List.iter
      (fun f ->
        if not (Int64.equal (Nicsim.Packet.get a f) (Nicsim.Packet.get b f)) then
          Alcotest.fail "replays diverge")
      flow_fields
  done

let test_trace_roundtrip () =
  let rng = Stdx.Prng.create 22L in
  let flows = Traffic.Workload.random_flows rng ~n:8 ~fields:flow_fields in
  let source = Traffic.Workload.of_flows rng flows in
  let trace = Traffic.Trace.record ~fields:flow_fields ~n:20 source in
  let text = Traffic.Trace.to_string trace in
  let trace2 = Traffic.Trace.of_string text in
  check_int "same length" 20 (Traffic.Trace.length trace2);
  check_bool "same fields" true (Traffic.Trace.fields trace2 = flow_fields);
  for i = 0 to 19 do
    let a = Traffic.Trace.nth trace i and b = Traffic.Trace.nth trace2 i in
    List.iter
      (fun f ->
        if not (Int64.equal (Nicsim.Packet.get a f) (Nicsim.Packet.get b f)) then
          Alcotest.fail "roundtrip diverges")
      flow_fields
  done;
  check_bool "bad input rejected" true
    (try ignore (Traffic.Trace.of_string "nosuch.field\n1\n"); false
     with Invalid_argument _ -> true)

let test_trace_no_loop () =
  let source = Traffic.Workload.constant [ (P4ir.Field.Ipv4_src, 1L) ] in
  let trace = Traffic.Trace.record ~fields:[ P4ir.Field.Ipv4_src ] ~n:3 source in
  let replay = Traffic.Trace.replay ~loop:false trace in
  ignore (replay ());
  ignore (replay ());
  ignore (replay ());
  check_bool "exhausts" true
    (try ignore (replay ()); false with Invalid_argument _ -> true)

let () =
  Alcotest.run "traffic"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "weighted" `Quick test_prng_weighted ] );
      ( "stats",
        [ Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "regression" `Quick test_stats_regression;
          Alcotest.test_case "entropy" `Quick test_stats_entropy ] );
      ( "zipf",
        [ Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform" `Quick test_zipf_uniform ] );
      ( "workload",
        [ Alcotest.test_case "random flows" `Quick test_random_flows_distinct;
          Alcotest.test_case "population projection" `Quick test_of_flows_projects_population;
          Alcotest.test_case "mark fraction" `Quick test_mark_fraction_rate;
          Alcotest.test_case "mixture" `Quick test_mixture_weights;
          Alcotest.test_case "zipf locality" `Quick test_zipf_source_locality ] );
      ( "trace",
        [ Alcotest.test_case "record/replay" `Quick test_trace_record_replay;
          Alcotest.test_case "text roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "no-loop exhaustion" `Quick test_trace_no_loop ] ) ]
