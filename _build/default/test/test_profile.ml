(* Tests for the profile library: counters, profile derivation from
   counters, counter fold-back across rewrites, and fused-name codecs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* --- Counter --- *)

let test_counter_basics () =
  let c = Profile.Counter.create () in
  Profile.Counter.incr c ~owner:"t" ~label:"a";
  Profile.Counter.incr c ~owner:"t" ~label:"a";
  Profile.Counter.incr ~by:3L c ~owner:"t" ~label:"b";
  check_bool "get a" true (Int64.equal (Profile.Counter.get c ~owner:"t" ~label:"a") 2L);
  check_bool "owner total" true (Int64.equal (Profile.Counter.owner_total c "t") 5L);
  check_bool "missing is zero" true
    (Int64.equal (Profile.Counter.get c ~owner:"x" ~label:"y") 0L);
  check_int "dump has 2" 2 (List.length (Profile.Counter.dump c))

let test_counter_diff_snapshot () =
  let c = Profile.Counter.create () in
  Profile.Counter.incr ~by:10L c ~owner:"t" ~label:"a";
  let base = Profile.Counter.snapshot c in
  Profile.Counter.incr ~by:5L c ~owner:"t" ~label:"a";
  Profile.Counter.incr ~by:2L c ~owner:"t" ~label:"b";
  let d = Profile.Counter.diff ~current:c ~baseline:base in
  check_bool "delta a" true (Int64.equal (Profile.Counter.get d ~owner:"t" ~label:"a") 5L);
  check_bool "delta b" true (Int64.equal (Profile.Counter.get d ~owner:"t" ~label:"b") 2L);
  (* Snapshot unaffected by later increments. *)
  check_bool "snapshot isolated" true
    (Int64.equal (Profile.Counter.get base ~owner:"t" ~label:"a") 10L)

let test_counter_merge () =
  let a = Profile.Counter.create () in
  let b = Profile.Counter.create () in
  Profile.Counter.incr ~by:2L a ~owner:"t" ~label:"x";
  Profile.Counter.incr ~by:3L b ~owner:"t" ~label:"x";
  Profile.Counter.merge_into ~dst:a ~src:b;
  check_bool "merged" true (Int64.equal (Profile.Counter.get a ~owner:"t" ~label:"x") 5L)

(* --- fused names --- *)

let test_fuse_split () =
  let pairs = [ ("t1", "allow"); ("t2", "deny") ] in
  let name = Profile.Counter_map.fuse pairs in
  check_bool "roundtrip" true (Profile.Counter_map.split_fused name = pairs);
  check_bool "miss is not fused" true (Profile.Counter_map.split_fused "miss" = []);
  check_string "single pair" "t:a" (Profile.Counter_map.fuse [ ("t", "a") ])

(* --- Profile --- *)

let table2 name =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Table.key P4ir.Field.Ipv4_dst P4ir.Match_kind.Exact ]
    ~actions:[ P4ir.Action.nop "a"; P4ir.Action.nop "b" ]
    ~default_action:"b" ()

let test_action_prob_fallback () =
  let t = table2 "t" in
  let prof = Profile.empty in
  check_float "uniform fallback" 0.5 (Profile.action_prob prof ~table:t ~action:"a")

let test_drop_prob () =
  let acl = P4ir.Builder.acl_table ~name:"acl" ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ] () in
  let prof =
    Profile.set_table "acl"
      { Profile.action_probs = [ ("allow", 0.3); ("deny", 0.7) ]; update_rate = 0.; locality = -1. }
      Profile.empty
  in
  check_float "drop prob" 0.7 (Profile.drop_prob prof acl)

let test_cache_hit_estimate () =
  let prof =
    Profile.set_table "a"
      { Profile.action_probs = []; update_rate = 0.; locality = 0.8 }
      (Profile.set_table "b"
         { Profile.action_probs = []; update_rate = 0.; locality = 0.6 }
         Profile.empty)
  in
  check_float "min of localities" 0.6 (Profile.cache_hit_estimate prof ~table_names:[ "a"; "b" ]);
  check_float "default when unknown" 0.9
    (Profile.cache_hit_estimate prof ~table_names:[ "zz" ]);
  let prof = Profile.with_default_cache_hit 0.5 prof in
  check_float "default override" 0.5 (Profile.cache_hit_estimate prof ~table_names:[ "zz" ])

let test_of_counters () =
  let prog = P4ir.Program.linear "p" [ table2 "t" ] in
  let c = Profile.Counter.create () in
  Profile.Counter.incr ~by:30L c ~owner:"t" ~label:"a";
  Profile.Counter.incr ~by:70L c ~owner:"t" ~label:"b";
  Profile.Counter.incr ~by:8L c ~owner:"t" ~label:"update";
  let prof = Profile.of_counters ~window:2.0 prog c in
  let t = table2 "t" in
  check_float "P(a)" 0.3 (Profile.action_prob prof ~table:t ~action:"a");
  check_float "update rate over window" 4.0 (Profile.update_rate prof ~table_name:"t")

let test_of_counters_cond () =
  let prog = P4ir.Program.empty "p" in
  let prog, id = P4ir.Program.add_node prog (P4ir.Program.Table (table2 "t", P4ir.Program.Uniform None)) in
  let prog, c_id =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"c" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some id) ~on_false:None)
  in
  let prog = P4ir.Program.with_root prog (Some c_id) in
  let counters = Profile.Counter.create () in
  Profile.Counter.incr ~by:75L counters ~owner:"c" ~label:"true";
  Profile.Counter.incr ~by:25L counters ~owner:"c" ~label:"false";
  let prof = Profile.of_counters prog counters in
  check_float "P(true)" 0.75 (Profile.true_prob prof ~cond_name:"c")

(* --- Counter fold-back --- *)

let test_fold_back_cache () =
  (* A cache covering t1,t2: its fused action counts decompose onto the
     originals; the originals' own (miss-path) counts add up. *)
  let t1 = table2 "t1" and t2 = table2 "t2" in
  let cache = Pipeleon.Cache.build ~name:"c" [ t1; t2 ] in
  let prog = P4ir.Program.empty "p" in
  let prog, id2 = P4ir.Program.add_node prog (P4ir.Program.Table (t2, P4ir.Program.Uniform None)) in
  let prog, id1 = P4ir.Program.add_node prog (P4ir.Program.Table (t1, P4ir.Program.Uniform (Some id2))) in
  let branches =
    List.map
      (fun (a : P4ir.Action.t) ->
        if String.equal a.name "miss" then (a.name, Some id1) else (a.name, None))
      cache.P4ir.Table.actions
  in
  let prog, idc = P4ir.Program.add_node prog (P4ir.Program.Table (cache, P4ir.Program.Per_action branches)) in
  let prog = P4ir.Program.with_root prog (Some idc) in
  P4ir.Program.validate_exn prog;
  let counters = Profile.Counter.create () in
  let fused = Profile.Counter_map.fuse [ ("t1", "a"); ("t2", "b") ] in
  Profile.Counter.incr ~by:40L counters ~owner:"c" ~label:fused;
  Profile.Counter.incr ~by:10L counters ~owner:"c" ~label:"miss";
  Profile.Counter.incr ~by:10L counters ~owner:"t1" ~label:"a";
  Profile.Counter.incr ~by:10L counters ~owner:"t2" ~label:"b";
  let folded = Profile.Counter_map.fold_back ~optimized:prog counters in
  check_bool "t1.a = 40 + 10" true
    (Int64.equal (Profile.Counter.get folded ~owner:"t1" ~label:"a") 50L);
  check_bool "t2.b = 40 + 10" true
    (Int64.equal (Profile.Counter.get folded ~owner:"t2" ~label:"b") 50L);
  check_bool "cache itself not in fold" true
    (Int64.equal (Profile.Counter.owner_total folded "c") 0L)

let test_fold_back_regular_and_cond () =
  let prog = P4ir.Program.empty "p" in
  let prog, id = P4ir.Program.add_node prog (P4ir.Program.Table (table2 "t", P4ir.Program.Uniform None)) in
  let prog, c_id =
    P4ir.Program.add_node prog
      (P4ir.Builder.cond ~name:"br" ~field:P4ir.Field.Ipv4_proto ~op:P4ir.Program.Eq ~arg:6L
         ~on_true:(Some id) ~on_false:None)
  in
  let prog = P4ir.Program.with_root prog (Some c_id) in
  let counters = Profile.Counter.create () in
  Profile.Counter.incr ~by:7L counters ~owner:"t" ~label:"a";
  Profile.Counter.incr ~by:9L counters ~owner:"br" ~label:"true";
  let folded = Profile.Counter_map.fold_back ~optimized:prog counters in
  check_bool "regular passes" true (Int64.equal (Profile.Counter.get folded ~owner:"t" ~label:"a") 7L);
  check_bool "branch passes" true
    (Int64.equal (Profile.Counter.get folded ~owner:"br" ~label:"true") 9L)

let () =
  Alcotest.run "profile"
    [ ( "counter",
        [ Alcotest.test_case "basics" `Quick test_counter_basics;
          Alcotest.test_case "diff/snapshot" `Quick test_counter_diff_snapshot;
          Alcotest.test_case "merge" `Quick test_counter_merge ] );
      ("fused-names", [ Alcotest.test_case "fuse/split" `Quick test_fuse_split ]);
      ( "profile",
        [ Alcotest.test_case "uniform fallback" `Quick test_action_prob_fallback;
          Alcotest.test_case "drop prob" `Quick test_drop_prob;
          Alcotest.test_case "cache hit estimate" `Quick test_cache_hit_estimate;
          Alcotest.test_case "of_counters" `Quick test_of_counters;
          Alcotest.test_case "of_counters cond" `Quick test_of_counters_cond ] );
      ( "fold-back",
        [ Alcotest.test_case "cache decomposition" `Quick test_fold_back_cache;
          Alcotest.test_case "regular + cond" `Quick test_fold_back_regular_and_cond ] ) ]
