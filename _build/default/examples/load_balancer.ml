(* A service load balancer under runtime churn (the §5.3.1 scenario,
   condensed): the Pipeleon runtime controller keeps re-optimizing as the
   control plane inserts backend entries and the traffic mix shifts.

   Run with: dune exec examples/load_balancer.exe *)

let fields = [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport ]

let build () =
  let vip =
    P4ir.Table.make ~name:"vip_match"
      ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_dst ]
      ~actions:
        [ P4ir.Action.make "to_backend" [ P4ir.Action.Set_from (P4ir.Field.Meta 0, P4ir.Field.Tcp_sport) ];
          P4ir.Action.nop "not_vip" ]
      ~default_action:"not_vip"
      ~entries:
        (List.init 8 (fun i ->
             P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int (0x0A000100 + i)) ] "to_backend"))
      ()
  in
  let backend =
    P4ir.Table.make ~name:"backend_select"
      ~keys:[ P4ir.Builder.exact_key (P4ir.Field.Meta 0) ]
      ~actions:[ P4ir.Builder.forward_action "pick"; P4ir.Action.nop "none" ]
      ~default_action:"none" ()
  in
  let conntrack =
    P4ir.Table.make ~name:"conntrack"
      ~keys:[ P4ir.Builder.exact_key P4ir.Field.Tcp_sport ]
      ~actions:[ P4ir.Action.nop "known"; P4ir.Action.nop "new_flow" ]
      ~default_action:"new_flow" ()
  in
  let acl =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name:"edge_acl"
         ~keys:[ P4ir.Builder.ternary_key P4ir.Field.Udp_dport ] ())
      (P4ir.Table.entry ~priority:1 [ P4ir.Pattern.Ternary (0xDEADL, 0xFFFFL) ] "deny")
  in
  let procs =
    List.init 6 (fun i ->
        P4ir.Table.make
          ~name:(Printf.sprintf "fw_stage%d" i)
          ~keys:[ P4ir.Builder.ternary_key (List.nth fields (i mod 4)) ]
          ~actions:[ P4ir.Builder.forward_action "ok"; P4ir.Action.nop "def" ]
          ~default_action:"def"
          ~entries:
            (List.init 8 (fun j ->
                 let mask = [| 0xFFL; 0xFF00L; 0xFFFFL; 0xFF0000L |].(j mod 4) in
                 P4ir.Table.entry ~priority:j
                   [ P4ir.Pattern.Ternary (Int64.of_int (j * 11), mask) ]
                   "ok"))
          ())
  in
  P4ir.Program.linear "load_balancer" (procs @ [ conntrack; vip; backend; acl ])

let () =
  let target = Costmodel.Target.bluefield2 in
  let sim = Nicsim.Sim.create target (build ()) in
  let controller =
    Runtime.Controller.create
      ~config:
        { Runtime.Controller.default_config with
          min_relative_gain = 0.02;
          optimizer = { Pipeleon.Optimizer.default_config with top_k = 1.0 } }
      sim ~original:(build ())
  in
  let rng = Stdx.Prng.create 99L in
  let flows = Traffic.Workload.random_flows rng ~n:512 ~fields in
  Printf.printf "%-6s %-12s %-10s %-8s %s\n" "t(s)" "thr(Gbps)" "reopt" "gen" "notes";
  for w = 0 to 11 do
    let churn = w >= 4 && w < 8 in
    (* Control-plane churn: new backends arrive fast for a while. *)
    if churn then
      for i = 0 to 24 do
        Runtime.Controller.insert controller ~table:"backend_select"
          (P4ir.Table.entry
             [ P4ir.Pattern.Exact (Int64.of_int (10_000 + (w * 100) + i)) ]
             "pick")
      done;
    let source = Traffic.Workload.of_flows ~zipf_s:1.2 rng flows in
    let stats =
      Nicsim.Sim.run_window sim ~duration:2.0 ~packets:1500 ~source
    in
    let report = Runtime.Controller.tick controller in
    Printf.printf "%-6.1f %-12.1f %-10b %-8d %s\n" (2.0 *. float_of_int w)
      stats.Nicsim.Sim.throughput_gbps report.Runtime.Controller.reoptimized
      (Runtime.Controller.generation controller)
      (if churn then "entry churn" else "");
    List.iter
      (fun issue -> Format.printf "        issue: %a@." Runtime.Monitor.pp_issue issue)
      report.Runtime.Controller.issues
  done;
  Printf.printf "\nfinal layout:\n%!";
  List.iter
    (fun (_, (t : P4ir.Table.t)) ->
      match t.role with
      | P4ir.Table.Regular -> ()
      | _ -> Format.printf "  %a@." P4ir.Table.pp t)
    (P4ir.Program.tables (Runtime.Controller.deployed_program controller))
