(* Quickstart: build a small P4 program, estimate its cost on a SmartNIC
   model, optimize it with a runtime profile, and watch packets run
   through the simulator before and after.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Build a program: two ACLs, two processing tables, a router. *)
  let acl name field =
    P4ir.Table.add_entry
      (P4ir.Builder.acl_table ~name ~keys:[ P4ir.Builder.exact_key field ] ())
      (P4ir.Table.entry [ P4ir.Pattern.Exact 666L ] "deny")
  in
  let nat =
    P4ir.Table.make ~name:"nat"
      ~keys:[ P4ir.Builder.exact_key P4ir.Field.Ipv4_src ]
      ~actions:
        [ P4ir.Action.make "rewrite" [ P4ir.Action.Set_field (P4ir.Field.Ipv4_src, 0x0A000001L) ];
          P4ir.Action.nop "pass" ]
      ~default_action:"pass"
      ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 0xC0A80001L ] "rewrite" ]
      ()
  in
  let routing =
    P4ir.Table.make ~name:"routing"
      ~keys:[ P4ir.Builder.lpm_key P4ir.Field.Ipv4_dst ]
      ~actions:[ P4ir.Builder.forward_action "fwd"; P4ir.Action.nop "def" ]
      ~default_action:"def"
      ~entries:
        [ P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A000000L, 8) ] "fwd";
          P4ir.Table.entry [ P4ir.Pattern.Lpm (0x0A0A0000L, 16) ] "fwd" ]
      ()
  in
  let program =
    P4ir.Program.linear "quickstart"
      [ acl "acl_src" P4ir.Field.Ipv4_src; acl "acl_dport" P4ir.Field.Tcp_dport; nat; routing ]
  in
  P4ir.Program.validate_exn program;
  Format.printf "program:@.%a@.@." P4ir.Program.pp program;

  (* 2. Estimate cost on a BlueField2-like target under a profile where
        the second ACL drops 60% of traffic. *)
  let target = Costmodel.Target.bluefield2 in
  let profile =
    Profile.set_table "acl_dport"
      { Profile.action_probs = [ ("allow", 0.4); ("deny", 0.6) ];
        update_rate = 0.;
        locality = 0.95 }
      (Profile.uniform program)
  in
  let latency = Costmodel.Cost.expected_latency target profile program in
  Printf.printf "expected latency: %.2f units (~%.0f Gbps)\n\n" latency
    (Costmodel.Target.throughput_gbps target ~latency);

  (* 3. Optimize: Pipeleon reorders the heavy dropper forward and may add
        a flow cache within budget. *)
  let result =
    Pipeleon.Optimizer.optimize
      ~config:{ Pipeleon.Optimizer.default_config with top_k = 1.0 }
      target profile program
  in
  print_string (Pipeleon.Optimizer.describe result);
  let optimized = result.Pipeleon.Optimizer.program in
  Format.printf "@.optimized:@.%a@.@." P4ir.Program.pp optimized;

  (* 4. Round-trip through the JSON intermediate format. *)
  let json = P4ir.Serialize.to_string optimized in
  (match P4ir.Serialize.of_string json with
   | Ok _ -> Printf.printf "JSON round-trip: ok (%d bytes)\n\n" (String.length json)
   | Error e -> Printf.printf "JSON round-trip failed: %s\n" e);

  (* 5. Run traffic through both layouts in the simulator. *)
  let measure prog =
    let sim = Nicsim.Sim.create target prog in
    let rng = Stdx.Prng.create 7L in
    let flows =
      Traffic.Workload.random_flows rng ~n:128
        ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_dport ]
    in
    let base = Traffic.Workload.of_flows ~zipf_s:1.2 rng flows in
    let source =
      Traffic.Workload.mark_fraction rng ~rate:0.6 ~field:P4ir.Field.Tcp_dport ~value:666L
        base
    in
    let stats = Nicsim.Sim.run_window sim ~duration:1.0 ~packets:4000 ~source in
    (stats.Nicsim.Sim.avg_latency, stats.Nicsim.Sim.throughput_gbps)
  in
  let l0, t0 = measure program in
  let l1, t1 = measure optimized in
  Printf.printf "simulated  original: latency %.2f, throughput %.1f Gbps\n" l0 t0;
  Printf.printf "simulated optimized: latency %.2f, throughput %.1f Gbps\n" l1 t1
