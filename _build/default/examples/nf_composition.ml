(* Heterogeneous ASIC/CPU processing (§3.2.4 and Appendix A.2): a chain
   where every other table needs the CPU cores, on the BMv2-style
   emulated NIC. Shows the naive partition, the table-copying fix, and
   the automatic placement search, both in the cost model and in the
   simulator.

   Run with: dune exec examples/nf_composition.exe *)

let fields =
  [| P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport; P4ir.Field.Tcp_dport |]

(* "dpi" tables carry actions the ASIC cannot run (deep inspection). *)
let table name i =
  P4ir.Table.make ~name
    ~keys:[ P4ir.Builder.exact_key fields.(i mod 4) ]
    ~actions:[ P4ir.Builder.forward_action "go"; P4ir.Action.nop "def" ]
    ~default_action:"def"
    ~entries:[ P4ir.Table.entry [ P4ir.Pattern.Exact 1L ] "go" ]
    ()

let build () =
  let tabs =
    List.concat
      (List.init 4 (fun i ->
           [ table (Printf.sprintf "parse%d" i) i; table (Printf.sprintf "dpi%d" i) (i + 1) ]))
  in
  P4ir.Program.linear "nf_composition" tabs

let needs_cpu name = String.length name >= 3 && String.sub name 0 3 = "dpi"

let () =
  let target = Costmodel.Target.emulated_nic in
  let prog = build () in
  let prof = Profile.uniform prog in
  let requirement id =
    match P4ir.Program.table_of prog id with
    | Some t when needs_cpu t.P4ir.Table.name -> Pipeleon.Placement.Needs_cpu
    | _ -> Pipeleon.Placement.Any
  in
  let naive = Pipeleon.Placement.naive prog ~require:requirement in
  let optimized = Pipeleon.Placement.optimize target prof prog ~require:requirement in

  let describe label placement =
    Printf.printf "%-10s expected latency %.1f, %.2f migrations/packet\n" label
      (Costmodel.Cost.expected_latency ~placement target prof prog)
      (Pipeleon.Placement.migrations_expected prof prog ~placement)
  in
  Printf.printf "cost model:\n";
  describe "naive" naive;
  describe "optimized" optimized;

  (* Confirm in the simulator: run the same packets under both placements. *)
  let simulate placement =
    let config = { (Nicsim.Exec.default_config target) with Nicsim.Exec.placement } in
    let sim = Nicsim.Sim.create ~config target prog in
    let rng = Stdx.Prng.create 21L in
    let flows = Traffic.Workload.random_flows rng ~n:64 ~fields:(Array.to_list fields) in
    let source = Traffic.Workload.of_flows rng flows in
    (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:3000 ~source).Nicsim.Sim.avg_latency
  in
  Printf.printf "\nsimulated:\n";
  Printf.printf "naive      %.1f latency units/packet\n" (simulate naive);
  Printf.printf "optimized  %.1f latency units/packet\n" (simulate optimized);

  (* Show the final assignment. *)
  Printf.printf "\nplacement:\n";
  List.iter
    (fun (id, (t : P4ir.Table.t)) ->
      Printf.printf "  %-8s -> %s\n" t.name
        (match optimized id with Costmodel.Cost.Asic -> "ASIC" | Costmodel.Cost.Cpu -> "CPU"))
    (P4ir.Program.tables prog)
