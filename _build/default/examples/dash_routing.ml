(* DASH-style cloud-gateway pipeline (§5.3.2): direction lookup, metadata
   setup, connection tracking, three ACL levels, and LPM routing — then a
   one-shot profile-guided optimization and a before/after comparison on
   the Agilio-like target.

   Run with: dune exec examples/dash_routing.exe *)

let deny = 0xBADL

let program () =
  let exact name field entries =
    P4ir.Table.make ~name
      ~keys:[ P4ir.Builder.exact_key field ]
      ~actions:[ P4ir.Builder.forward_action "set"; P4ir.Action.nop "skip" ]
      ~default_action:"skip"
      ~entries:
        (List.init entries (fun j -> P4ir.Table.entry [ P4ir.Pattern.Exact (Int64.of_int j) ] "set"))
      ()
  in
  let acl level field =
    let base =
      P4ir.Builder.acl_table ~name:(Printf.sprintf "acl_level%d" level)
        ~keys:[ P4ir.Builder.ternary_key field ] ()
    in
    List.fold_left
      (fun tab mask ->
        P4ir.Table.add_entry tab
          (P4ir.Table.entry ~priority:1
             [ P4ir.Pattern.Ternary (Int64.logand deny mask, mask) ]
             "deny"))
      base [ 0xFFFL; 0xFFEL; 0xFFCL ]
  in
  let routing =
    P4ir.Table.make ~name:"outbound_routing"
      ~keys:[ P4ir.Builder.lpm_key P4ir.Field.Ipv4_dst ]
      ~actions:[ P4ir.Builder.forward_action "route"; P4ir.Action.drop_action ]
      ~default_action:"drop"
      ~entries:
        (List.init 12 (fun j ->
             let len = [| 8; 16; 24 |].(j mod 3) in
             P4ir.Table.entry
               [ P4ir.Pattern.Lpm (Int64.shift_left (Int64.of_int (j + 1)) (32 - len), len) ]
               "route"))
      ()
  in
  P4ir.Program.linear "dash"
    [ exact "direction_lookup" P4ir.Field.Ingress_port 2;
      exact "eni_lookup" P4ir.Field.Eth_dst 4;
      exact "vni_mapping" P4ir.Field.Ipv4_dscp 4;
      exact "conntrack" P4ir.Field.Tcp_sport 64;
      acl 1 P4ir.Field.Ipv4_src;
      acl 2 P4ir.Field.Ipv4_dst;
      acl 3 P4ir.Field.Tcp_sport;
      routing ]

let () =
  let target = Costmodel.Target.agilio_cx in
  let prog = program () in

  (* Collect a real profile by running traffic through the instrumented
     program, exactly as the runtime would. *)
  let sim = Nicsim.Sim.create target prog in
  let rng = Stdx.Prng.create 3L in
  let flows =
    Traffic.Workload.random_flows rng ~n:256
      ~fields:[ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport ]
  in
  let source =
    Traffic.Workload.mark_fraction rng ~rate:0.5 ~field:P4ir.Field.Tcp_sport ~value:deny
      (Traffic.Workload.of_flows ~zipf_s:1.3 rng flows)
  in
  let before = Nicsim.Sim.run_window sim ~duration:5.0 ~packets:5000 ~source in
  let profile = Nicsim.Sim.current_profile sim in
  Printf.printf "observed profile:\n%s\n" (Format.asprintf "%a" Profile.pp profile);

  let result =
    Pipeleon.Optimizer.optimize
      ~config:
        { Pipeleon.Optimizer.default_config with
          top_k = 1.0;
          candidate_opts =
            { Pipeleon.Candidate.default_options with max_merge_len = 3 } }
      target profile prog
  in
  print_string (Pipeleon.Optimizer.describe result);

  (* Deploy and re-measure. *)
  Nicsim.Sim.reconfigure sim result.Pipeleon.Optimizer.program;
  (* Warm caches, then measure. *)
  ignore (Nicsim.Sim.run_window sim ~duration:5.0 ~packets:5000 ~source);
  let after = Nicsim.Sim.run_window sim ~duration:5.0 ~packets:5000 ~source in
  Printf.printf "\nbefore: %.1f Gbps (latency %.1f)\n" before.Nicsim.Sim.throughput_gbps
    before.Nicsim.Sim.avg_latency;
  Printf.printf "after:  %.1f Gbps (latency %.1f)  -> %.0f%% improvement\n"
    after.Nicsim.Sim.throughput_gbps after.Nicsim.Sim.avg_latency
    ((after.Nicsim.Sim.throughput_gbps /. before.Nicsim.Sim.throughput_gbps -. 1.) *. 100.)
