examples/toolchain.mli:
