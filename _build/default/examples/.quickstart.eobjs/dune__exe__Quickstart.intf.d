examples/quickstart.mli:
