examples/load_balancer.ml: Array Costmodel Format Int64 List Nicsim P4ir Pipeleon Printf Runtime Stdx Traffic
