examples/dash_routing.ml: Array Costmodel Format Int64 List Nicsim P4ir Pipeleon Printf Profile Stdx Traffic
