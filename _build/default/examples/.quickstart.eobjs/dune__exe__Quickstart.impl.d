examples/quickstart.ml: Costmodel Format Nicsim P4ir Pipeleon Printf Profile Stdx String Traffic
