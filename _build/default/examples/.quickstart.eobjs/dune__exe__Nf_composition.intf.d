examples/nf_composition.mli:
