examples/nf_composition.ml: Array Costmodel List Nicsim P4ir Pipeleon Printf Profile Stdx String Traffic
