examples/dash_routing.mli:
