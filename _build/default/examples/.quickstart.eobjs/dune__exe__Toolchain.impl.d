examples/toolchain.ml: Costmodel Fun List Nicsim P4ir P4lite Pipeleon Printf Stdx Sys Traffic
