(* End-to-end toolchain walk: load a P4-lite source file, record a
   traffic trace, profile and optimize the program, replay the *same*
   trace against both layouts, and emit Graphviz DOT + optimized source.

   Run with: dune exec examples/toolchain.exe (from the repo root) *)

let fields =
  [ P4ir.Field.Ipv4_src; P4ir.Field.Ipv4_dst; P4ir.Field.Tcp_sport;
    P4ir.Field.Tcp_dport; P4ir.Field.Udp_dport ]

let () =
  let path = "examples/firewall.p4l" in
  let prog =
    if Sys.file_exists path then P4lite.Lower.load_file path
    else begin
      Printf.printf "(%s not found; run from the repository root)\n" path;
      exit 0
    end
  in
  Printf.printf "loaded %s: %d tables, dependency diameter %d\n" path
    (List.length (P4ir.Program.tables prog))
    (Costmodel.Rmt.dependency_diameter prog);

  (* Record a reproducible trace: a flow population with an attack-ish
     component that the DPI ACL drops. *)
  let rng = Stdx.Prng.create 2024L in
  let flows = Traffic.Workload.random_flows rng ~n:256 ~fields in
  let live =
    Traffic.Workload.mark_fraction rng ~rate:0.35 ~field:P4ir.Field.Tcp_sport
      ~value:6667L
      (Traffic.Workload.of_flows ~zipf_s:1.2 rng flows)
  in
  let trace = Traffic.Trace.record ~fields ~n:4000 live in
  Printf.printf "recorded trace: %d packets over %d fields\n" (Traffic.Trace.length trace)
    (List.length (Traffic.Trace.fields trace));

  (* Profile the original program under the trace. *)
  let target = Costmodel.Target.bluefield2 in
  let sim = Nicsim.Sim.create target prog in
  let before =
    Nicsim.Sim.run_window sim ~duration:1.0 ~packets:(Traffic.Trace.length trace)
      ~source:(Traffic.Trace.replay trace)
  in
  let profile = Nicsim.Sim.current_profile sim in

  (* Optimize and deploy. *)
  let result =
    Pipeleon.Optimizer.optimize
      ~config:{ Pipeleon.Optimizer.default_config with top_k = 1.0 }
      target profile prog
  in
  print_string (Pipeleon.Optimizer.describe result);
  let optimized = result.Pipeleon.Optimizer.program in
  Nicsim.Sim.reconfigure sim optimized;
  (* Warm caches with one replay pass, then measure the same trace. *)
  ignore
    (Nicsim.Sim.run_window sim ~duration:1.0 ~packets:(Traffic.Trace.length trace)
       ~source:(Traffic.Trace.replay trace));
  let after =
    Nicsim.Sim.run_window sim ~duration:1.0 ~packets:(Traffic.Trace.length trace)
      ~source:(Traffic.Trace.replay trace)
  in
  Printf.printf "\nsame trace, both layouts:\n";
  Printf.printf "  original : latency %.2f  throughput %.1f Gbps\n"
    before.Nicsim.Sim.avg_latency before.Nicsim.Sim.throughput_gbps;
  Printf.printf "  optimized: latency %.2f  throughput %.1f Gbps\n"
    after.Nicsim.Sim.avg_latency after.Nicsim.Sim.throughput_gbps;

  (* Export artifacts. *)
  let write path text =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
  in
  write "/tmp/firewall_original.dot" (P4ir.Dot.program prog);
  write "/tmp/firewall_optimized.dot" (P4ir.Dot.program optimized);
  write "/tmp/firewall_deps.dot" (P4ir.Dot.dependencies prog);
  write "/tmp/firewall_optimized.p4l" (P4lite.Emit.emit optimized);
  Traffic.Trace.save "/tmp/firewall_trace.csv" trace;
  Printf.printf
    "\nartifacts: /tmp/firewall_{original,optimized,deps}.dot, \
     /tmp/firewall_optimized.p4l, /tmp/firewall_trace.csv\n"
