open Cmdliner

(* Programs load from the JSON IR or from P4-lite source, by extension.
   Frontend diagnostics become clean one-line errors, not backtraces. *)
let read_program path =
  try
    if Filename.check_suffix path ".p4l" then P4lite.Lower.load_file path
    else P4ir.Serialize.load path
  with
  | P4lite.Lower.Error msg | P4lite.Parser.Error msg | Failure msg | Invalid_argument msg
    ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | P4lite.Lexer.Error { line; col; msg } ->
    Printf.eprintf "error: %s\n" (P4lite.Lexer.error_message ~line ~col msg);
    exit 1

let write_text path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let write_program path prog =
  write_text path
    (if Filename.check_suffix path ".p4l" then P4lite.Emit.emit prog
     else P4ir.Serialize.to_string prog)

let target_of_name = function
  | "bluefield2" | "bf2" -> Ok Costmodel.Target.bluefield2
  | "agilio" | "agilio_cx" -> Ok Costmodel.Target.agilio_cx
  | "emulated" | "emulated_nic" | "bmv2" -> Ok Costmodel.Target.emulated_nic
  | s -> Error (`Msg ("unknown target: " ^ s ^ " (bluefield2|agilio|emulated)"))

let target_conv = Arg.conv (target_of_name, fun fmt t -> Costmodel.Target.pp fmt t)

let target_arg =
  Arg.(value & opt target_conv Costmodel.Target.bluefield2
       & info [ "t"; "target" ] ~docv:"TARGET" ~doc:"Target NIC model.")

let program_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.json")

(* Profiles are provided as a small JSON file:
   {"tables": {"name": {"actions": {"a": 0.7, ...}, "update_rate": 1.0,
   "locality": 0.9}}, "conds": {"c": 0.3}} *)
let profile_of_json prog json =
  let open P4ir.Json in
  let prof = ref (Profile.uniform prog) in
  (match member_opt "tables" json with
   | Some (Obj tables) ->
     List.iter
       (fun (name, tj) ->
         let actions =
           match member_opt "actions" tj with
           | Some (Obj actions) -> List.map (fun (a, p) -> (a, get_float p)) actions
           | _ -> []
         in
         let update_rate =
           match member_opt "update_rate" tj with Some v -> get_float v | None -> 0.
         in
         let locality =
           match member_opt "locality" tj with Some v -> get_float v | None -> -1.
         in
         prof :=
           Profile.set_table name
             { Profile.action_probs = actions; update_rate; locality }
             !prof)
       tables
   | _ -> ());
  (match member_opt "conds" json with
   | Some (Obj conds) ->
     List.iter
       (fun (name, p) ->
         prof := Profile.set_cond name { Profile.true_prob = P4ir.Json.get_float p } !prof)
       conds
   | _ -> ());
  !prof

let load_profile prog = function
  | None -> Profile.uniform prog
  | Some path ->
    let ic = open_in path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    profile_of_json prog (P4ir.Json.of_string_exn content)

let profile_to_json prog prof =
  let open P4ir.Json in
  let tables =
    List.map
      (fun (_, (tab : P4ir.Table.t)) ->
        let actions =
          List.map
            (fun (a : P4ir.Action.t) ->
              (a.name, Float (Profile.action_prob prof ~table:tab ~action:a.name)))
            tab.actions
        in
        let fields =
          [ ("actions", Obj actions);
            ("update_rate", Float (Profile.update_rate prof ~table_name:tab.name)) ]
        in
        let fields =
          match Profile.locality prof ~table_name:tab.name with
          | Some l -> fields @ [ ("locality", Float l) ]
          | None -> fields
        in
        (tab.name, Obj fields))
      (P4ir.Program.tables prog)
  in
  let conds =
    List.map
      (fun (_, (c : P4ir.Program.cond)) ->
        (c.cond_name, Float (Profile.true_prob prof ~cond_name:c.cond_name)))
      (P4ir.Program.conds prog)
  in
  Obj [ ("tables", Obj tables); ("conds", Obj conds) ]

let profile_arg =
  Arg.(value & opt (some file) None
       & info [ "p"; "profile" ] ~docv:"PROFILE.json" ~doc:"Runtime profile.")

let memory_arg =
  Arg.(value & opt int Costmodel.Resource.default_budget.Costmodel.Resource.memory_bytes
       & info [ "memory" ] ~docv:"BYTES" ~doc:"Memory budget.")

let updates_arg =
  Arg.(value & opt float Costmodel.Resource.default_budget.Costmodel.Resource.updates_per_sec
       & info [ "updates" ] ~docv:"RATE" ~doc:"Entry-update budget (per second).")

let budget_of ~memory ~updates =
  { Costmodel.Resource.memory_bytes = memory; updates_per_sec = updates }

let telemetry_flag =
  Arg.(value & flag
       & info [ "telemetry" ]
           ~doc:"Attach an enabled telemetry sink (metrics + sampled tracing) to every \
                 executor under test; any divergence then indicts the instrumentation.")

let make_sink ?(trace_out = None) ?(sample = 64) ~enabled () =
  if not enabled then Telemetry.null
  else
    match trace_out with
    | Some _ -> Telemetry.create ~trace_capacity:65536 ~trace_sample_every:sample ()
    | None -> Telemetry.create ()
