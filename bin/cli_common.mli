(** Shared plumbing for every [pipeleonc] subcommand: program and
    profile I/O, target selection, telemetry sink construction, and the
    resource-budget flags — defined once so optimize / cost / profile /
    telemetry / fuzz / chaos all parse and load things identically. *)

open Cmdliner

(** {1 Program I/O} *)

val read_program : string -> P4ir.Program.t
(** Load the JSON IR or P4-lite source ([.p4l]), by extension. Frontend
    diagnostics become clean one-line errors on stderr and [exit 1]. *)

val write_program : string -> P4ir.Program.t -> unit
(** Write JSON IR or P4-lite source, by extension. *)

val write_text : string -> string -> unit

(** {1 Targets} *)

val target_of_name : string -> (Costmodel.Target.t, [ `Msg of string ]) result
(** ["bluefield2"]/["bf2"], ["agilio"]/["agilio_cx"],
    ["emulated"]/["emulated_nic"]/["bmv2"]. *)

val target_conv : Costmodel.Target.t Arg.conv
val target_arg : Costmodel.Target.t Term.t
(** [-t]/[--target], default BlueField-2. *)

val program_arg : string Term.t
(** Required positional [PROGRAM.json]. *)

(** {1 Profiles} *)

val profile_of_json : P4ir.Program.t -> P4ir.Json.t -> Profile.t
(** Overlay a profile JSON ({["tables"]} / {["conds"]}) on
    {!Profile.uniform}. *)

val load_profile : P4ir.Program.t -> string option -> Profile.t
(** [None] gives the uniform profile. *)

val profile_to_json : P4ir.Program.t -> Profile.t -> P4ir.Json.t

val profile_arg : string option Term.t
(** [-p]/[--profile]. *)

(** {1 Resource budget} *)

val memory_arg : int Term.t
(** [--memory BYTES], default {!Costmodel.Resource.default_budget}. *)

val updates_arg : float Term.t
(** [--updates RATE], default {!Costmodel.Resource.default_budget}. *)

val budget_of : memory:int -> updates:float -> Costmodel.Resource.budget

(** {1 Telemetry} *)

val telemetry_flag : bool Term.t
(** [--telemetry]: attach an enabled sink to the executors under test. *)

val make_sink : ?trace_out:string option -> ?sample:int -> enabled:bool -> unit -> Telemetry.t
(** {!Telemetry.null} when not [enabled]; otherwise an enabled sink,
    with a trace ring sized for offline dumps when [trace_out] is
    given ([sample] defaults to 64). *)
