(* pipeleonc: the offline Pipeleon optimizer CLI.

   Reads a program in the JSON intermediate format (what a P4 compiler
   front-end would emit), optionally a profile, optimizes, and writes the
   rewritten JSON — the source-to-source flow of §5.1. Also exposes
   inspection subcommands (pipelets, cost estimation, validation) and the
   differential fuzzer, including the self-healing-runtime chaos mode.

   Everything shared across subcommands — program/profile loading, target
   selection, budget flags, telemetry sinks — lives in Cli_common. *)

open Cmdliner
open Cli_common

let optimize_cmd =
  let output_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"OUT.json" ~doc:"Output path (default stdout).")
  in
  let top_k_arg =
    Arg.(value & opt float 0.2
         & info [ "k"; "top-k" ] ~docv:"FRACTION" ~doc:"Fraction of pipelets to optimize.")
  in
  let run path target profile_path top_k memory updates output =
    let prog = read_program path in
    let prof = load_profile prog profile_path in
    let config =
      { Pipeleon.Optimizer.default_config with
        top_k;
        budget = budget_of ~memory ~updates }
    in
    (* A fresh warm-start cache: one-shot runs always miss, but the
       describe output then carries the cache line, so the hit rate is
       visible wherever optimize output is read. *)
    let warm =
      { Pipeleon.Optimizer.warm_cache = Pipeleon.Search.create_cache ();
        warm_signature = Runtime.Incremental.pipelet_signature }
    in
    let result = Pipeleon.Optimizer.optimize ~config ~warm target prof prog in
    prerr_string (Pipeleon.Optimizer.describe result);
    (match output with
     | Some out -> write_program out result.Pipeleon.Optimizer.program
     | None -> print_string (P4ir.Serialize.to_string result.Pipeleon.Optimizer.program))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Optimize a program for a SmartNIC target. Input and output may be \
          the JSON IR (.json) or P4-lite source (.p4l).")
    Term.(const run $ program_arg $ target_arg $ profile_arg $ top_k_arg $ memory_arg
          $ updates_arg $ output_arg)

let cost_cmd =
  let run path target profile_path =
    let prog = read_program path in
    let prof = load_profile prog profile_path in
    let latency = Costmodel.Cost.expected_latency target prof prog in
    Printf.printf "expected latency: %.3f units\n" latency;
    Printf.printf "throughput estimate: %.1f Gbps\n"
      (Costmodel.Target.throughput_gbps target ~latency);
    Printf.printf "memory: %d bytes\n" (Costmodel.Resource.program_memory target prog)
  in
  Cmd.v
    (Cmd.info "cost" ~doc:"Estimate a program's cost under the model.")
    Term.(const run $ program_arg $ target_arg $ profile_arg)

let pipelets_cmd =
  let run path target profile_path =
    let prog = read_program path in
    let prof = load_profile prog profile_path in
    let pipelets = Pipeleon.Pipelet.form prog in
    let hots = Pipeleon.Hotspot.rank target prof prog pipelets in
    List.iter
      (fun (h : Pipeleon.Hotspot.hot) ->
        Format.printf "%a cost=%.3f reach=%.3f@." Pipeleon.Pipelet.pp h.pipelet
          h.weighted_cost h.reach_prob)
      hots
  in
  Cmd.v
    (Cmd.info "pipelets" ~doc:"Show pipelets ranked by hotspot cost.")
    Term.(const run $ program_arg $ target_arg $ profile_arg)

let profile_cmd =
  let trace_arg =
    Arg.(required & opt (some file) None
         & info [ "trace" ] ~docv:"TRACE.csv" ~doc:"Packet trace to replay (Traffic.Trace CSV).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"PROFILE.json" ~doc:"Where to write the profile.")
  in
  let packets_arg =
    Arg.(value & opt int 10_000 & info [ "packets" ] ~docv:"N" ~doc:"Packets to simulate.")
  in
  let run path target trace_path packets output =
    let prog = read_program path in
    let trace = Traffic.Trace.load trace_path in
    let sim = Nicsim.Sim.create target prog in
    let stats =
      Nicsim.Sim.run_window sim ~duration:1.0 ~packets
        ~source:(Traffic.Trace.replay trace)
    in
    Printf.eprintf "simulated %d packets: latency %.2f, throughput %.1f Gbps, drops %.1f%%\n"
      packets stats.Nicsim.Sim.avg_latency stats.Nicsim.Sim.throughput_gbps
      (stats.Nicsim.Sim.drop_fraction *. 100.);
    let prof = Nicsim.Sim.current_profile sim in
    let json = P4ir.Json.to_string ~indent:2 (profile_to_json prog prof) in
    match output with
    | Some out -> write_text out json
    | None -> print_string json
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Replay a trace against a program in the simulator and emit the runtime \
          profile that `optimize -p` consumes.")
    Term.(const run $ program_arg $ target_arg $ trace_arg $ packets_arg $ out_arg)

let telemetry_cmd =
  let trace_arg =
    Arg.(required & opt (some file) None
         & info [ "trace" ] ~docv:"TRACE.csv" ~doc:"Packet trace to replay (Traffic.Trace CSV).")
  in
  let packets_arg =
    Arg.(value & opt int 10_000
         & info [ "packets" ] ~docv:"N" ~doc:"Packets to simulate per window.")
  in
  let windows_arg =
    Arg.(value & opt int 1 & info [ "windows" ] ~docv:"N" ~doc:"Windows to simulate.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("json", `Json); ("prometheus", `Prometheus) ]) `Json
         & info [ "format" ] ~docv:"FORMAT" ~doc:"Metrics exposition: json or prometheus.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"METRICS" ~doc:"Where to write the metrics (default stdout).")
  in
  let trace_out_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"TRACE.json"
             ~doc:"Record sampled packet walks and write them as chrome://tracing \
                   (Perfetto) JSON to this file.")
  in
  let sample_arg =
    Arg.(value & opt int 64
         & info [ "trace-sample" ] ~docv:"N" ~doc:"Trace one packet in every N.")
  in
  let run path target trace_path packets windows format output trace_out sample =
    let prog = read_program path in
    let trace = Traffic.Trace.load trace_path in
    let tel = make_sink ~trace_out ~sample ~enabled:true () in
    let sim = Nicsim.Sim.create ~telemetry:tel target prog in
    for _ = 1 to windows do
      ignore
        (Nicsim.Sim.run_window sim ~duration:1.0 ~packets
           ~source:(Traffic.Trace.replay trace))
    done;
    let m = Telemetry.metrics tel in
    let text =
      match format with
      | `Json -> P4ir.Json.to_string ~indent:2 (Telemetry.Metrics.to_json m) ^ "\n"
      | `Prometheus -> Telemetry.Metrics.to_prometheus m
    in
    (match output with Some out -> write_text out text | None -> print_string text);
    match (trace_out, Telemetry.trace tel) with
    | Some out, Some ring ->
      Telemetry.Trace.write_file ~process_name:(P4ir.Program.name prog) ring out
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "telemetry"
       ~doc:
         "Replay a trace with the telemetry sink enabled and emit the metrics \
          registry (counters, gauges, latency histograms) as JSON or Prometheus \
          text; optionally record sampled packet walks as chrome://tracing JSON.")
    Term.(const run $ program_arg $ target_arg $ trace_arg $ packets_arg $ windows_arg
          $ format_arg $ out_arg $ trace_out_arg $ sample_arg)

let graph_cmd =
  let deps_arg =
    Arg.(value & flag
         & info [ "deps" ] ~doc:"Emit the table dependency graph instead of the program DAG.")
  in
  let run path target profile_path deps =
    let prog = read_program path in
    if deps then print_string (P4ir.Dot.dependencies prog)
    else begin
      ignore target;
      let prog_reach =
        let prof = load_profile prog profile_path in
        let reach = Costmodel.Cost.reach_probs prof prog in
        fun id -> List.assoc_opt id reach
      in
      print_string (P4ir.Dot.program ~reach:prog_reach prog)
    end
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Emit Graphviz DOT for the program or its dependencies.")
    Term.(const run $ program_arg $ target_arg $ profile_arg $ deps_arg)

let translate_cmd =
  let output_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT.{json|p4l}")
  in
  let run path output =
    write_program output (read_program path)
  in
  Cmd.v
    (Cmd.info "translate" ~doc:"Convert between P4-lite source and the JSON IR.")
    Term.(const run $ program_arg $ output_arg)

let validate_cmd =
  let run path =
    let prog = read_program path in
    match P4ir.Program.validate prog with
    | Ok () ->
      Printf.printf "ok: %d nodes, %d tables\n" (P4ir.Program.num_nodes prog)
        (List.length (P4ir.Program.tables prog))
    | Error msg ->
      Printf.eprintf "invalid: %s\n" msg;
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Validate a program file.") Term.(const run $ program_arg)

(* Flags shared by the fuzzing entry points (fuzz and chaos). *)
let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

let fuzz_budget_arg ~default =
  Arg.(value & opt int default & info [ "budget" ] ~docv:"N" ~doc:"Number of generated cases.")

let fuzz_packets_arg =
  Arg.(value & opt int 64 & info [ "packets" ] ~docv:"N" ~doc:"Packets replayed per case.")

let fuzz_out_arg =
  Arg.(value & opt string "_fuzz"
       & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Where shrunk repro bundles are written; \"none\" disables writing.")

let driver_arg =
  let drv_conv =
    let parse s =
      match Fuzz.Oracle.driver_of_string s with
      | Some d -> Ok d
      | None -> Error (`Msg ("unknown driver: " ^ s ^ " (interp|batched|parallel|compiled)"))
    in
    Arg.conv (parse, fun fmt d -> Format.pp_print_string fmt (Fuzz.Oracle.driver_to_string d))
  in
  Arg.(value & opt drv_conv Fuzz.Oracle.Interp
       & info [ "driver" ] ~docv:"DRIVER"
           ~doc:"Execution path carrying the packets under test: interp (default), \
                 batched (one-packet bursts through run_batch), parallel (the sharded \
                 replica shape), or compiled (the flattened op-array data path — in \
                 chaos mode each deploy and rollback also exercises recompilation).")

let report_findings report =
  print_string (Fuzz.Driver.summary report);
  if report.Fuzz.Driver.findings <> [] then exit 1

let fuzz_cmd =
  let mode_conv =
    let parse s =
      match Fuzz.Driver.mode_of_string s with
      | Some m -> Ok m
      | None ->
        Error (`Msg ("unknown mode: " ^ s ^ " (sim-diff|optim-equiv|serialize-roundtrip|chaos)"))
    in
    Arg.conv (parse, fun fmt m -> Format.pp_print_string fmt (Fuzz.Driver.mode_to_string m))
  in
  let mode_arg =
    Arg.(value & opt mode_conv Fuzz.Driver.Optim_equiv
         & info [ "m"; "mode" ] ~docv:"MODE"
             ~doc:"Oracle: sim-diff (reference interpreter vs simulator), optim-equiv \
                   (original vs optimized program), serialize-roundtrip, or chaos \
                   (self-healing runtime under fault injection).")
  in
  let mutant_arg =
    Arg.(value & opt (some string) None
         & info [ "mutant" ] ~docv:"NAME"
             ~doc:"Corrupt the optimized program with a seeded bug (oracle self-test); one \
                   of drop-merged-entry, swap-cache-skip, corrupt-entry-action, flip-cond.")
  in
  let replay_arg =
    Arg.(value & opt (some dir) None
         & info [ "replay" ] ~docv:"DIR" ~doc:"Re-run a repro bundle instead of fuzzing.")
  in
  let parallel_arg =
    Arg.(value & flag
         & info [ "optimizer-parallel" ]
             ~doc:"Run the optimizer's local search across domains (the fast path); \
                   plans must stay identical to the sequential reference.")
  in
  let rules_arg =
    Arg.(value & opt (some int) None
         & info [ "rules" ] ~docv:"N"
             ~doc:"Rule-scale mode: give every generated table N/2..N entries (single-key \
                   tables, 24-bit values, pooled ternary masks, no range tables) so \
                   sim-diff exercises the large-table engine backends — learned-index \
                   LPM and decision-tree ternary (docs/PERF.md \"Rule-scale backends\").")
  in
  let run mode seed budget packets out mutant replay parallel telemetry driver target rules =
    let mutate =
      Option.map
        (fun name ->
          match Fuzz.Mutate.find name with
          | Some m -> m
          | None ->
            Printf.eprintf "unknown mutant: %s\n" name;
            exit 2)
        mutant
    in
    let optimizer_config =
      if parallel then
        Some
          { Fuzz.Driver.default_optimizer_config with
            Pipeleon.Optimizer.use_parallel = true }
      else None
    in
    match replay with
    | Some dir -> (
      match
        Fuzz.Driver.replay ?optimizer_config ?mutate ~telemetry ~driver ~target mode ~dir
      with
      | None ->
        print_endline "replay: no divergence";
        exit 0
      | Some d ->
        Printf.printf "replay: divergence%s: %s\n"
          (if d.Fuzz.Oracle.packet_index >= 0 then
             Printf.sprintf " at packet %d" d.Fuzz.Oracle.packet_index
           else "")
          d.Fuzz.Oracle.reason;
        exit 1)
    | None ->
      let out_dir = if out = "none" then None else Some out in
      let params =
        Option.map
          (fun n ->
            { Fuzz.Gen.default_params with
              Fuzz.Gen.rules = Some (max 1 n);
              value_bits = 24;
              max_keys = 1;
              allow_range = false })
          rules
      in
      report_findings
        (Fuzz.Driver.run ?out_dir ?optimizer_config ?mutate ?params ~n_packets:packets
           ~telemetry ~driver ~target mode ~seed ~budget)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential conformance fuzzing: generate random programs, profiles and \
          packet streams; replay them through independent executions; shrink and \
          persist any divergence.")
    Term.(const run $ mode_arg $ seed_arg $ fuzz_budget_arg ~default:200 $ fuzz_packets_arg
          $ fuzz_out_arg $ mutant_arg $ replay_arg $ parallel_arg $ telemetry_flag
          $ driver_arg $ target_arg $ rules_arg)

let chaos_cmd =
  let remediations_arg =
    Arg.(value & flag
         & info [ "remediations" ]
             ~doc:"After the run, print the aggregated runtime.remediations.* counters \
                   (rollbacks, retries, update repairs, ...) — what the injector \
                   provoked and the controller healed. Runs every case under one \
                   shared telemetry sink.")
  in
  (* Chaos cases cost a whole control loop each (several ticks, deploys,
     rollbacks), so the default budget is far below fuzz's. *)
  let run seed budget packets out telemetry driver remediations target =
    let out_dir = if out = "none" then None else Some out in
    if not remediations then
      report_findings
        (Fuzz.Driver.run ?out_dir ~n_packets:packets ~telemetry ~driver ~target
           Fuzz.Driver.Chaos ~seed ~budget)
    else begin
      (* One sink across all cases, so the remediation counters aggregate
         over the whole run. Same per-case generators as Driver.run, so
         the same seed fuzzes the same cases either way. *)
      let sink = Telemetry.create () in
      Printf.printf "fuzz mode=chaos seed=%d budget=%d packets/case=%d\n" seed budget packets;
      let divergences = ref 0 in
      for i = 0 to budget - 1 do
        let case = Fuzz.Gen.case ~n_packets:packets (Fuzz.Driver.case_rng ~seed i) in
        match Fuzz.Chaos.check ~driver ~sink target case with
        | None -> ()
        | Some d ->
          incr divergences;
          Printf.printf "case %d: %s%s\n" i
            (if d.Fuzz.Oracle.packet_index >= 0 then
               Printf.sprintf "packet %d: " d.Fuzz.Oracle.packet_index
             else "")
            d.Fuzz.Oracle.reason
      done;
      let m = Telemetry.metrics sink in
      let count name =
        Option.value ~default:0 (Telemetry.Metrics.find_counter m ("runtime.remediations." ^ name))
      in
      Printf.printf "remediations: rollback=%d retry=%d update_repair=%d\n"
        (count "rollback") (count "retry") (count "update_repair");
      Printf.printf "reversals: cache_evict=%d merge_split=%d shed=%d\n"
        (count "cache_evict") (count "merge_split") (count "shed");
      Printf.printf "divergences=%d cases=%d\n" !divergences budget;
      if !divergences > 0 then exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fuzz the self-healing runtime: drive a live controller with fault \
          injection enabled (failed deploys, dropped and corrupted entry updates, \
          skewed profile counters) and require it to converge back to a healthy \
          layout with forwarding bit-identical to the reference interpreter \
          throughout. Equivalent to `fuzz --mode chaos`.")
    Term.(const run $ seed_arg $ fuzz_budget_arg ~default:25 $ fuzz_packets_arg
          $ fuzz_out_arg $ telemetry_flag $ driver_arg $ remediations_arg $ target_arg)

let () =
  let info =
    Cmd.info "pipeleonc" ~version:"1.0.0"
      ~doc:"Profile-guided P4 optimizer for SmartNICs (Pipeleon reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ optimize_cmd; cost_cmd; profile_cmd; telemetry_cmd; pipelets_cmd; graph_cmd;
            translate_cmd; validate_cmd; fuzz_cmd; chaos_cmd ]))
